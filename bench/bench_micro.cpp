// Micro-benchmarks (google-benchmark) for the hot paths of the urcgc
// implementation: wire codecs, history operations, waiting-list release,
// vector clocks, decision computation, and raw simulator throughput.

#include <benchmark/benchmark.h>

#include <vector>

#include "causal/vector_clock.hpp"
#include "causal/waiting_list.hpp"
#include "core/coordinator.hpp"
#include "core/history.hpp"
#include "core/pdu.hpp"
#include "harness/experiment.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace urcgc;

void BM_EncodeDecision(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const core::Decision d = core::Decision::initial(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode_pdu(d));
  }
  state.SetLabel(std::to_string(core::encode_pdu(d).size()) + " bytes");
}
BENCHMARK(BM_EncodeDecision)->Arg(10)->Arg(40)->Arg(100);

void BM_DecodeDecision(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto bytes = core::encode_pdu(core::Decision::initial(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decode_pdu(bytes));
  }
}
BENCHMARK(BM_DecodeDecision)->Arg(10)->Arg(40)->Arg(100);

void BM_EncodeAppMessage(benchmark::State& state) {
  core::AppMessage msg;
  msg.mid = {3, 1000};
  msg.deps = {{3, 999}, {0, 500}, {7, 123}};
  msg.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode_pdu(msg));
  }
}
BENCHMARK(BM_EncodeAppMessage)->Arg(32)->Arg(512);

void BM_HistoryStorePurge(benchmark::State& state) {
  const auto batch = static_cast<Seq>(state.range(0));
  for (auto _ : state) {
    core::History history(8);
    core::AppMessage msg;
    for (Seq s = 1; s <= batch; ++s) {
      msg.mid = {s % 8 == 0 ? ProcessId{0} : static_cast<ProcessId>(s % 8),
                 s};
      history.store(msg);
    }
    for (ProcessId p = 0; p < 8; ++p) history.purge_upto(p, batch);
    benchmark::DoNotOptimize(history.total_size());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_HistoryStorePurge)->Arg(64)->Arg(1024);

void BM_HistoryRange(benchmark::State& state) {
  core::History history(4);
  core::AppMessage msg;
  for (Seq s = 1; s <= 4096; ++s) {
    msg.mid = {1, s};
    history.store(msg);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.range(1, 2000, 2040, 8));
  }
}
BENCHMARK(BM_HistoryRange);

void BM_WaitingListChainRelease(benchmark::State& state) {
  const auto depth = static_cast<Seq>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    causal::WaitingList list;
    for (Seq s = 2; s <= depth; ++s) {
      causal::PendingMessage pending;
      pending.mid = {0, s};
      pending.deps = {{0, s - 1}};
      const Mid missing{0, s - 1};
      list.add(std::move(pending), std::span(&missing, 1));
    }
    state.ResumeTiming();
    // Process the root; each release unlocks exactly one successor.
    Mid current{0, 1};
    for (Seq s = 1; s < depth; ++s) {
      auto released = list.on_processed(current);
      if (released.empty()) break;
      current = released.front().mid;
    }
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_WaitingListChainRelease)->Arg(64)->Arg(512);

void BM_VectorClockDeliverable(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  causal::VectorClock local(n);
  causal::VectorClock msg(n);
  msg.tick(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local.deliverable(msg, 0));
  }
}
BENCHMARK(BM_VectorClockDeliverable)->Arg(10)->Arg(100);

void BM_ComputeDecision(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  core::CoordinatorInputs inputs;
  inputs.subrun = 10;
  inputs.coordinator = 0;
  inputs.base = core::Decision::initial(n);
  for (ProcessId p = 0; p < n; ++p) {
    core::Request rq;
    rq.subrun = 10;
    rq.from = p;
    rq.last_processed.assign(n, 5);
    rq.oldest_waiting.assign(n, kNoSeq);
    rq.prev_decision = inputs.base;
    inputs.requests.push_back(std::move(rq));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_decision(inputs));
  }
}
BENCHMARK(BM_ComputeDecision)->Arg(10)->Arg(40);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (Tick t = 0; t < 1000; ++t) {
      queue.schedule(t % 97, [] {});
    }
    while (!queue.empty()) {
      auto [at, fn] = queue.pop();
      benchmark::DoNotOptimize(at);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_FullProtocolRun(benchmark::State& state) {
  // End-to-end: a complete reliable run, n=8, 80 messages.
  for (auto _ : state) {
    harness::ExperimentConfig config;
    config.protocol.n = 8;
    config.workload.load = 0.6;
    config.workload.total_messages = 80;
    config.seed = 37;
    config.limit_rtd = 2000;
    auto report = harness::Experiment(config).run();
    benchmark::DoNotOptimize(report.processed_events);
  }
}
BENCHMARK(BM_FullProtocolRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
