// Ablation: causal (urcgc) vs totally ordered (urgc-companion) delivery.
//
// The paper's Section 2 splits reliable multicast into total-order
// services (replicated objects) and causal services (cooperative work),
// with urgc and urcgc as the authors' two algorithms. Our
// TotalOrderAdapter derives total order from the stability boundaries the
// urcgc decisions already agree on — so the cost of total order is
// exactly the stability lag. This bench measures that lag: mean delivery
// latency, causal vs total, across loads and fault mixes.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/total_order.hpp"
#include "harness/table.hpp"
#include "net/endpoint.hpp"
#include "stats/metrics.hpp"
#include "stats/summary.hpp"
#include "workload/workload.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace urcgc;

struct Row {
  double causal_mean;
  double total_mean;
  std::size_t delivered;
  bool consistent;
};

Row run(double load, double omission, std::uint64_t seed) {
  constexpr int kN = 8;
  core::Config config;
  config.n = kN;
  config.track_stability_boundaries = true;

  fault::FaultPlan plan(kN);
  plan.uniform_omissions(omission);
  sim::Simulation sim;
  fault::FaultInjector faults(std::move(plan), Rng(seed).fork(1));
  net::Network network(sim, faults, {.min_latency = 5, .max_latency = 9},
                       Rng(seed).fork(2));

  stats::DelayTracker causal_delays;
  stats::DelayTracker total_delays;

  std::vector<std::unique_ptr<net::DatagramEndpoint>> endpoints;
  std::vector<std::unique_ptr<core::UrcgcProcess>> processes;
  std::vector<std::unique_ptr<core::TotalOrderAdapter>> adapters;
  for (ProcessId p = 0; p < kN; ++p) {
    endpoints.push_back(std::make_unique<net::DatagramEndpoint>(network, p));
    processes.push_back(std::make_unique<core::UrcgcProcess>(
        config, p, sim, *endpoints.back(), faults));
    adapters.push_back(
        std::make_unique<core::TotalOrderAdapter>(*processes.back()));
    // Every message carries its generation tick; registering it from any
    // indication is idempotent, giving both trackers a common anchor.
    adapters.back()->set_causal_ind([&, p](const core::AppMessage& msg) {
      causal_delays.on_generated(msg.mid, msg.generated_at);
      causal_delays.on_processed(msg.mid, p, sim.now());
    });
    adapters.back()->set_total_ind([&, p](const core::AppMessage& msg) {
      total_delays.on_generated(msg.mid, msg.generated_at);
      total_delays.on_processed(msg.mid, p, sim.now());
    });
    processes.back()->start();
  }

  workload::WorkloadConfig wl;
  wl.load = load;
  wl.total_messages = 200;
  workload::LoadGenerator::Hooks hooks;
  hooks.submit = [&](ProcessId p, std::vector<std::uint8_t> payload,
                     std::vector<Mid> deps) {
    return processes[p]->data_rq(std::move(payload), std::move(deps));
  };
  hooks.active = [&](ProcessId p) { return !processes[p]->halted(); };
  hooks.pending = [&](ProcessId p) {
    return static_cast<std::int64_t>(processes[p]->pending_user_messages());
  };
  hooks.last_processed = [&](ProcessId p, ProcessId origin) {
    return processes[p]->last_processed_mid_of(origin);
  };
  workload::LoadGenerator gen(kN, wl, std::move(hooks), Rng(seed).fork(3));
  sim.on_round([&](RoundId round) { gen.on_round(round); });

  sim.run_until_quiescent(4000 * 20, [&] {
    if (!gen.exhausted()) return false;
    for (const auto& adapter : adapters) {
      if (adapter->backlog() > 0) return false;
    }
    for (const auto& process : processes) {
      if (!process->halted() && (process->pending_user_messages() > 0 ||
                                 process->mt().waiting_size() > 0)) {
        return false;
      }
    }
    return true;
  });
  sim.run_until(sim.now() + 8 * 20);

  Row row{};
  row.causal_mean = stats::summarize(causal_delays.delays_ticks()).mean / 20.0;
  row.total_mean = stats::summarize(total_delays.delays_ticks()).mean / 20.0;
  row.delivered = adapters[0]->total_log().size();

  row.consistent = true;
  const auto& reference = adapters[0]->total_log();
  for (const auto& adapter : adapters) {
    if (adapter->broken()) row.consistent = false;
    const auto& log = adapter->total_log();
    const std::size_t common = std::min(reference.size(), log.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (reference[i] != log[i]) row.consistent = false;
    }
  }
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Ablation — causal (urcgc) vs total-order (urgc-companion) delivery"
      " latency\nn=8, 200 messages per point\n\n");

  harness::Table table({"load", "omission", "causal D (rtd)",
                        "total D (rtd)", "lag (rtd)", "consistent"});
  bool all_consistent = true;
  for (double load : {0.3, 0.8}) {
    for (double omission : {0.0, 1.0 / 100.0}) {
      const Row row = run(load, omission, 41);
      all_consistent = all_consistent && row.consistent;
      table.row({harness::Table::num(load, 1),
                 harness::Table::num(omission, 3),
                 harness::Table::num(row.causal_mean, 3),
                 harness::Table::num(row.total_mean, 3),
                 harness::Table::num(row.total_mean - row.causal_mean, 3),
                 row.consistent ? "OK" : "DIVERGED"});
    }
  }
  table.print();
  std::printf(
      "\ntotal order costs the stability lag (>= one subrun: the next"
      " full-group decision must cover the message); causal delivery is"
      " immediate. All members delivered identical sequences: %s\n",
      all_consistent ? "YES" : "NO");
  return all_consistent ? 0 : 1;
}
