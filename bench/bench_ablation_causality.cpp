// Ablation: the three causality interpretations of paper Section 3.
//
//   general      — Definition 3.1 verbatim: only user-declared deps; a
//                  process may root several concurrent sequences
//   intermediate — the paper's implemented variant: one sequence per
//                  process plus discretionary cross-deps
//   temporal     — BSS91-style: depend on the last processed message of
//                  every member (the restriction the paper criticises for
//                  "reduced concurrency capabilities")
//
// Metric: mean and p99 end-to-end delay, and the fraction of message
// arrivals that had to wait in the waiting list. Under omission faults the
// temporal interpretation couples every sequence to every other, so one
// missing message stalls unrelated traffic — higher delay, more waiting.

#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

using namespace urcgc;

struct Row {
  double mean_delay;
  double p99_delay;
  double recoveries;
  std::uint64_t waited;
};

Row run(core::CausalityMode mode, double omission) {
  harness::ExperimentConfig config;
  config.protocol.n = 10;
  config.protocol.causality = mode;
  config.workload.load = 0.8;
  config.workload.total_messages = 400;
  config.workload.cross_dep_prob = 0.3;
  config.faults.omission_prob = omission;
  config.seed = 29;
  config.limit_rtd = 6000;
  const auto report = harness::Experiment(config).run();
  if (!report.all_ok()) {
    std::fprintf(stderr, "INVARIANT VIOLATION in causality ablation\n");
  }
  Row row{};
  row.mean_delay = report.delay_rtd.mean;
  row.p99_delay = report.delay_rtd.p99;
  row.recoveries =
      static_cast<double>(report.traffic.count(stats::MsgClass::kRecoverRq));
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Ablation — causality interpretation vs delay under omissions\n"
      "n=10, load 0.8, 400 messages, omission 1/100\n\n");

  const std::pair<const char*, core::CausalityMode> modes[] = {
      {"general (Def 3.1)", core::CausalityMode::kGeneral},
      {"intermediate", core::CausalityMode::kIntermediate},
      {"temporal (BSS91)", core::CausalityMode::kTemporal},
  };

  for (double omission : {0.0, 1.0 / 100.0}) {
    std::printf("omission rate: %s\n", omission == 0.0 ? "none" : "1/100");
    harness::Table table(
        {"interpretation", "mean D (rtd)", "p99 D (rtd)", "recover rqs"});
    double delays[3] = {};
    int i = 0;
    for (const auto& [name, mode] : modes) {
      const Row row = run(mode, omission);
      delays[i++] = row.p99_delay;
      table.row({name, harness::Table::num(row.mean_delay, 3),
                 harness::Table::num(row.p99_delay, 3),
                 harness::Table::num(row.recoveries, 0)});
    }
    table.print();
    if (omission > 0.0) {
      std::printf(
          "shape check: temporal p99 >= intermediate p99 >= general p99: "
          "%s\n",
          delays[2] >= delays[1] - 0.05 && delays[1] >= delays[0] - 0.05
              ? "OK"
              : "FAILS");
    }
    std::printf("\n");
  }
  std::printf(
      "note: the general interpretation admits the most concurrency (only\n"
      "declared deps gate processing); the temporal interpretation couples\n"
      "all sequences, so a single omission stalls unrelated messages.\n");
  return 0;
}
