// Table 1 reproduction: amount of control messages and their size (bytes),
// urcgc vs CBCAST, under reliable and crash conditions.
//
// The paper reports per-stability-decision counts and per-message sizes:
//            reliable                  crash
//   urcgc    2(n-1) msgs, n(36+l/4) B  2(2K+f)(n-1) msgs, same size
//   CBCAST   (n+1) msgs, 4(n+1) B     K((f+1)(2n-3)+1) msgs, grows with data
//
// We print the analytic formulas next to measured values from our wire
// encodings and full protocol runs. Also checks the datagram-fit claims:
// n=15 decision fits a 576 B IP datagram, n=40 fits an Ethernet payload.

#include <cstdio>

#include "baselines/analytic.hpp"
#include "baselines/runner.hpp"
#include "core/pdu.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

using namespace urcgc;

struct Measured {
  double ctrl_msgs_per_subrun = 0;
  double acks_per_subrun = 0;
  std::uint64_t max_ctrl_size = 0;
  double blocked_rtd = 0;
};

Measured measure_urcgc(int n, bool crash) {
  harness::ExperimentConfig config;
  config.protocol.n = n;
  config.protocol.k_attempts = 3;
  config.workload.load = 0.5;
  config.workload.total_messages = 15 * n;
  if (crash) config.faults.crashes = {{static_cast<ProcessId>(n - 1), 150}};
  config.seed = 13;
  config.limit_rtd = 6000;
  const auto report = harness::Experiment(config).run();

  Measured m;
  const double subruns = report.end_rtd;
  m.ctrl_msgs_per_subrun =
      static_cast<double>(
          report.traffic.count(stats::MsgClass::kRequest) +
          report.traffic.count(stats::MsgClass::kDecision) +
          report.traffic.count(stats::MsgClass::kRecoverRq) +
          report.traffic.count(stats::MsgClass::kRecoverRsp)) /
      subruns;
  m.max_ctrl_size =
      std::max(report.traffic.max_bytes(stats::MsgClass::kRequest),
               report.traffic.max_bytes(stats::MsgClass::kDecision));
  return m;
}

Measured measure_cbcast(int n, bool crash) {
  baselines::BaselineConfig config;
  config.n = n;
  config.k_attempts = 3;
  config.workload.load = 0.5;
  config.workload.total_messages = 15 * n;
  if (crash) config.faults.flush_coordinator_crashes = 0;  // single crash
  config.seed = 13;
  config.limit_rtd = 6000;
  const auto report = baselines::run_cbcast(config);

  Measured m;
  // Protocol-level control traffic only (stability + flush); transport
  // acknowledgements are the reliable-channel substrate the ISIS design
  // assumes and are reported separately.
  const std::uint64_t ctrl =
      report.traffic.count(stats::MsgClass::kCbcastStability) +
      report.traffic.count(stats::MsgClass::kCbcastFlush);
  const double subruns = report.end_rtd > 0 ? report.end_rtd : 1.0;
  m.ctrl_msgs_per_subrun = static_cast<double>(ctrl) / subruns;
  m.acks_per_subrun =
      static_cast<double>(
          report.traffic.count(stats::MsgClass::kTransportAck)) /
      subruns;
  m.max_ctrl_size =
      std::max(report.traffic.max_bytes(stats::MsgClass::kCbcastFlush),
               report.traffic.max_bytes(stats::MsgClass::kCbcastStability));
  m.blocked_rtd = report.blocked_rtd;
  return m;
}

}  // namespace

int main() {
  std::printf(
      "Table 1 — control messages per subrun and max control-message size\n"
      "(measured from wire encodings; paper formulas alongside)\n\n");

  for (int n : {5, 15, 40}) {
    std::printf("== n = %d ==\n", n);
    harness::Table table({"protocol", "condition", "ctrl msgs/subrun",
                          "paper count", "acks/subrun", "max ctrl size B",
                          "paper size B", "blocked rtd"});

    const auto u_rel = measure_urcgc(n, false);
    table.row({"urcgc", "reliable",
               harness::Table::num(u_rel.ctrl_msgs_per_subrun, 1),
               harness::Table::num(baselines::analytic::urcgc_msgs_reliable(n)),
               "0", harness::Table::num(u_rel.max_ctrl_size),
               harness::Table::num(baselines::analytic::urcgc_msg_size(n)),
               "0.0"});

    const auto u_crash = measure_urcgc(n, true);
    table.row(
        {"urcgc", "crash (f=0)",
         harness::Table::num(u_crash.ctrl_msgs_per_subrun, 1),
         harness::Table::num(baselines::analytic::urcgc_msgs_reliable(n)),
         "0", harness::Table::num(u_crash.max_ctrl_size),
         harness::Table::num(baselines::analytic::urcgc_msg_size(n)),
         "0.0"});

    const auto c_rel = measure_cbcast(n, false);
    table.row(
        {"cbcast", "reliable", harness::Table::num(c_rel.ctrl_msgs_per_subrun, 1),
         harness::Table::num(baselines::analytic::cbcast_msgs_reliable(n)),
         harness::Table::num(c_rel.acks_per_subrun, 1),
         harness::Table::num(c_rel.max_ctrl_size),
         harness::Table::num(baselines::analytic::cbcast_msg_size_reliable(n)),
         harness::Table::num(c_rel.blocked_rtd, 1)});

    const auto c_crash = measure_cbcast(n, true);
    table.row(
        {"cbcast", "crash (f=0)",
         harness::Table::num(c_crash.ctrl_msgs_per_subrun, 1),
         harness::Table::num(baselines::analytic::cbcast_msgs_crash(n, 3, 0)),
         harness::Table::num(c_crash.acks_per_subrun, 1),
         harness::Table::num(c_crash.max_ctrl_size),
         harness::Table::num(baselines::analytic::cbcast_flush_size(n)),
         harness::Table::num(c_crash.blocked_rtd, 1)});
    table.print();

    // Datagram-fit claims.
    const auto decision_size =
        core::encode_pdu(core::Decision::initial(n)).size();
    std::printf("urcgc decision for n=%d: %zu bytes", n, decision_size);
    if (n == 15) {
      std::printf(" — fits 576 B IP datagram: %s",
                  decision_size <= 576 ? "YES" : "NO");
    }
    if (n == 40) {
      std::printf(" — fits 1500 B Ethernet payload: %s",
                  decision_size <= 1500 ? "YES" : "NO");
    }
    std::printf("\n\n");
  }

  std::printf(
      "shape notes: urcgc pays a constant 2(n-1) agreement cost per subrun"
      " whether or not failures occur, with constant message size; CBCAST is"
      " cheaper when reliable but its flush traffic (and blocked time) grows"
      " with failures while urcgc's stays flat.\n");
  return 0;
}
