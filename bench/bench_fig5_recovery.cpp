// Figure 5 reproduction: recovery/agreement time T (rtd) against the
// number f of consecutive coordinator crashes, urcgc vs CBCAST.
//
// Scenario (paper Section 6): one server process crashes (the f = 0
// case); for f > 0, f consecutive coordinators additionally crash right
// before issuing their decision (urcgc) / while coordinating the flush
// (CBCAST). T is the time until the group has re-agreed on composition
// and stability. The paper's models: urcgc T = 2K + f, CBCAST
// T = K(5f + 6) with processing suspended throughout.

#include <algorithm>
#include <cstdio>

#include "baselines/analytic.hpp"
#include "baselines/runner.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

using namespace urcgc;

constexpr int kN = 10;
constexpr int kK = 3;

double run_urcgc(int f) {
  harness::ExperimentConfig config;
  config.protocol.n = kN;
  config.protocol.k_attempts = kK;
  config.workload.load = 0.5;
  config.workload.total_messages = 250;
  // Server crash at subrun 4; coordinators of subruns 5..5+f-1 crash at
  // their decision rounds.
  config.faults.crashes = {{kN - 1, 4 * 20}};
  config.faults.coordinator_crashes = f;
  config.faults.coordinator_crash_start = 5;
  config.seed = 11;
  config.limit_rtd = 6000;

  const auto report = harness::Experiment(config).run();
  std::vector<ProcessId> crashed{kN - 1};
  for (int i = 0; i < f; ++i) {
    crashed.push_back(static_cast<ProcessId>((5 + i) % kN));
  }
  return report.recovery_time_rtd(crashed, 4 * 20, 20);
}

double run_cbcast_storm(int f) {
  baselines::BaselineConfig config;
  config.n = kN;
  config.k_attempts = kK;
  config.workload.load = 0.5;
  config.workload.total_messages = 250;
  config.faults.flush_coordinator_crashes = f;
  config.faults.storm_start = 80;
  config.seed = 11;
  config.limit_rtd = 6000;
  const auto report = baselines::run_cbcast(config);
  if (!report.causal_order_ok) {
    std::fprintf(stderr, "CBCAST causal order violated at f=%d\n", f);
  }
  return report.view_change_rtd;
}

}  // namespace

int main() {
  std::printf(
      "Figure 5 — recovery/agreement time T (rtd) vs consecutive "
      "coordinator crashes f\nn=%d, K=%d\n\n",
      kN, kK);

  harness::Table table({"f", "urcgc T (meas)", "urcgc 2K+f", "CBCAST T (meas)",
                        "CBCAST K(5f+6)", "ratio (meas)"});
  double prev_urcgc = 0.0;
  bool monotone = true;
  bool urcgc_wins = true;
  for (int f = 0; f <= 5; ++f) {
    const double t_urcgc = run_urcgc(f);
    const double t_cbcast = run_cbcast_storm(f);
    if (t_urcgc < prev_urcgc - 1.5) monotone = false;
    prev_urcgc = t_urcgc;
    if (t_cbcast > 0 && t_urcgc > 0 && t_cbcast < t_urcgc) {
      urcgc_wins = false;
    }
    table.row({harness::Table::num(static_cast<std::int64_t>(f)),
               harness::Table::num(t_urcgc, 1),
               harness::Table::num(static_cast<std::int64_t>(
                   baselines::analytic::urcgc_recovery_rtd(kK, f))),
               harness::Table::num(t_cbcast, 1),
               harness::Table::num(static_cast<std::int64_t>(
                   baselines::analytic::cbcast_recovery_rtd(kK, f))),
               t_urcgc > 0 ? harness::Table::num(t_cbcast / t_urcgc, 2)
                           : "-"});
  }
  table.print();

  std::printf("\nshape checks:\n");
  std::printf("  urcgc T grows ~linearly with f : %s\n",
              monotone ? "OK" : "FAILS");
  std::printf("  urcgc beats CBCAST at every f  : %s\n",
              urcgc_wins ? "OK" : "FAILS");
  std::printf(
      "  urcgc processing continues during recovery; CBCAST blocks for the"
      " whole flush (see blocked time in bench_table1_overhead)\n");
  return 0;
}
