// Figure 6 b) reproduction: the distributed flow-control policy bounds the
// local history (threshold 8n) at the cost of a longer time to finish
// processing the offered messages.
//
// Paper: when the local history length reaches 8n, a process refrains from
// generating until cleaning shrinks it; this bounds both the history and
// the waiting list, and lengthens the run.

#include <cstdio>

#include "baselines/analytic.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

using namespace urcgc;

harness::ExperimentReport run(std::size_t threshold, int k) {
  harness::ExperimentConfig config;
  config.protocol.n = 40;
  config.protocol.k_attempts = k;
  config.protocol.history_threshold = threshold;
  config.workload.load = 1.0;  // saturating load to stress the history
  config.workload.total_messages = 1600;
  config.workload.max_pending_per_process = 64;
  // An early crash stalls history cleaning until the crash is declared
  // (K subruns of attempts), so at saturating load the history outruns
  // the paper's 8n threshold — the situation flow control must bound.
  config.faults.crashes = {{39, 60}};
  config.faults.omission_prob = 1.0 / 500.0;
  config.faults.window_start_rtd = 0;
  config.faults.window_end_rtd = 10;
  config.seed = 19;
  config.limit_rtd = 8000;
  return harness::Experiment(config).run();
}

}  // namespace

int main() {
  const auto threshold =
      static_cast<std::size_t>(baselines::analytic::flow_control_threshold(40));
  std::printf(
      "Figure 6 b) — history with distributed flow control (threshold 8n ="
      " %zu)\nn=40, 1600 messages, saturating load, K=9, general omission in"
      " the first 10 rtd\n\n",
      threshold);

  const auto uncontrolled = run(0, 9);
  const auto controlled = run(threshold, 9);

  harness::Table table({"metric", "no flow control", "threshold 8n"});
  table.row({"peak history (max over procs)",
             harness::Table::num(uncontrolled.history_max.max_value(), 0),
             harness::Table::num(controlled.history_max.max_value(), 0)});
  table.row({"peak waiting list",
             harness::Table::num(uncontrolled.waiting_max.max_value(), 0),
             harness::Table::num(controlled.waiting_max.max_value(), 0)});
  table.row({"completion time (rtd)",
             harness::Table::num(uncontrolled.end_rtd, 0),
             harness::Table::num(controlled.end_rtd, 0)});
  std::uint64_t blocked = 0;
  for (const auto& process : controlled.processes) {
    blocked += process.flow_blocked_rounds;
  }
  table.row({"flow-blocked rounds (total)", "0", harness::Table::num(blocked)});
  table.row({"invariants",
             uncontrolled.all_ok() ? "OK" : "VIOLATED",
             controlled.all_ok() ? "OK" : "VIOLATED"});
  table.print();

  std::printf("\nshape checks:\n");
  const double margin = 2.0 * 40;  // messages in flight during one subrun
  std::printf("  controlled peak near threshold      : %.0f <= %zu + %g"
              " (%s)\n",
              controlled.history_max.max_value(), threshold, margin,
              controlled.history_max.max_value() <=
                      static_cast<double>(threshold) + margin
                  ? "OK"
                  : "FAILS");
  std::printf("  flow control engaged                : %s\n",
              blocked > 0 ? "OK" : "never triggered");
  std::printf("  completion takes longer when bounded: %.0f vs %.0f rtd"
              " (%s)\n",
              controlled.end_rtd, uncontrolled.end_rtd,
              controlled.end_rtd >= uncontrolled.end_rtd ? "OK" : "FAILS");
  return 0;
}
