// Soak bench: long repeated runs over the throughput sweep's axes, with
// omission faults on for urcgc (the baselines run fault-free — Psync has
// no loss-recovery path, so faulting it tests the baseline, not us),
// validating that (a) the URCGC correctness clauses
// hold on every run on both backends, and (b) the zero-copy fan-out's
// buffer accounting stays flat — bytes copied per delivered message must
// not grow with run length (a growth trend would mean some layer silently
// re-materializes shared payloads).
//
// Usage:
//   bench_soak [--seeds=N] [--messages=N] [--full]
//
// Default: n in {10, 50}, payloads {64, 1024}, urcgc on sim+threads plus
// both baselines on sim, 3 seeds. --full widens to the full throughput
// matrix (n up to 200, 16 KiB payloads).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/runner.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

using namespace urcgc;

struct SoakStats {
  std::uint64_t delivered = 0;
  wire::BufferStats buffers;
  bool ok = false;

  [[nodiscard]] double copied_per_delivery() const {
    if (delivered == 0) return 0.0;
    return static_cast<double>(buffers.bytes_allocated +
                               buffers.bytes_copied) /
           static_cast<double>(delivered);
  }
};

SoakStats soak_urcgc(bool threads, int n, std::size_t payload,
                     std::int64_t messages, std::uint64_t seed) {
  harness::ExperimentConfig config;
  config.protocol.n = n;
  config.workload.load = 0.8;
  config.workload.total_messages = messages;
  config.workload.cross_dep_prob = 0.2;
  config.workload.payload_bytes = payload;
  config.faults.omission_prob = 1.0 / 500.0;
  config.backend =
      threads ? harness::Backend::kThreads : harness::Backend::kSim;
  config.thread_tick_ns = 0;
  config.seed = seed;
  config.limit_rtd = 8000;
  const auto report = harness::Experiment(config).run();
  return {report.processed_events, report.buffers,
          report.all_ok() && report.workload_exhausted};
}

SoakStats soak_baseline(bool cbcast, int n, std::size_t payload,
                        std::int64_t messages, std::uint64_t seed) {
  baselines::BaselineConfig config;
  config.n = n;
  config.workload.load = 0.8;
  config.workload.total_messages = messages;
  config.workload.payload_bytes = payload;
  // Baselines run fault-free: Psync genuinely loses atomicity under
  // subnet loss (no recovery path — the paper's point), and the soak
  // validates our substrate, not the baselines' guarantees.
  config.seed = seed;
  config.limit_rtd = 8000;
  const auto report =
      cbcast ? baselines::run_cbcast(config) : baselines::run_psync(config);
  return {report.delivered_events, report.buffers, report.causal_order_ok};
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 3;
  std::int64_t messages = 400;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--messages=", 0) == 0) {
      messages = std::atoll(arg.c_str() + 11);
    } else if (arg == "--full") {
      full = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_soak [--seeds=N] [--messages=N] [--full]\n");
      return 2;
    }
  }

  const std::vector<int> group_sizes =
      full ? std::vector<int>{10, 50, 200} : std::vector<int>{10, 50};
  const std::vector<std::size_t> payloads =
      full ? std::vector<std::size_t>{64, 1024, 16384}
           : std::vector<std::size_t>{64, 1024};

  struct Point {
    const char* protocol;
    bool threads;
  };
  const Point points[] = {
      {"urcgc", false}, {"urcgc", true}, {"cbcast", false}, {"psync", false}};

  std::printf(
      "Soak — %d seed(s), %lld messages per run, omission 1/500 (urcgc)\n\n",
      seeds, static_cast<long long>(messages));
  harness::Table table({"protocol", "backend", "n", "payload", "runs",
                        "copied B/msg (short)", "copied B/msg (long)",
                        "verdict"});
  bool all_ok = true;
  for (const Point& point : points) {
    for (int n : group_sizes) {
      for (std::size_t payload : payloads) {
        double short_cost = 0.0;
        double long_cost = 0.0;
        bool point_ok = true;
        int runs = 0;
        for (int s = 1; s <= seeds; ++s, ++runs) {
          // Pair each seed's normal-length run with a 4x-longer one: the
          // per-delivery copy cost must not trend upward with run length.
          SoakStats short_run, long_run;
          const auto seed = static_cast<std::uint64_t>(s);
          if (std::strcmp(point.protocol, "urcgc") == 0) {
            short_run =
                soak_urcgc(point.threads, n, payload, messages, seed);
            long_run =
                soak_urcgc(point.threads, n, payload, 4 * messages, seed);
          } else {
            const bool cbcast = std::strcmp(point.protocol, "cbcast") == 0;
            short_run = soak_baseline(cbcast, n, payload, messages, seed);
            long_run = soak_baseline(cbcast, n, payload, 4 * messages, seed);
          }
          point_ok &= short_run.ok && long_run.ok;
          short_cost += short_run.copied_per_delivery();
          long_cost += long_run.copied_per_delivery();
          // 1.25x headroom over the short run: amortization can only
          // improve with length, so growth beyond noise is a regression.
          if (long_run.copied_per_delivery() >
              short_run.copied_per_delivery() * 1.25 + 8.0) {
            point_ok = false;
          }
        }
        short_cost /= seeds;
        long_cost /= seeds;
        all_ok &= point_ok;
        table.row({point.protocol, point.threads ? "threads" : "sim",
                   harness::Table::num(static_cast<std::int64_t>(n)),
                   harness::Table::num(static_cast<double>(payload), 0),
                   harness::Table::num(static_cast<std::int64_t>(runs)),
                   harness::Table::num(short_cost, 1),
                   harness::Table::num(long_cost, 1),
                   point_ok ? "OK" : "FAIL"});
      }
    }
  }
  table.print();
  std::printf("\nsoak %s\n", all_ok ? "PASSED" : "FAILED");
  return all_ok ? 0 : 1;
}
