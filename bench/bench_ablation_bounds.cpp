// Ablation: the 2K+f cleaning/agreement bound (paper Section 4, Lemma 4.1)
// across the (K, f) plane. For each combination we crash one server plus f
// consecutive coordinators and measure how many rtd the group needs to
// re-agree on composition + stability. The measured value must stay within
// the paper's 2K+f bound (plus one subrun of broadcast slack).

#include <cstdio>

#include "baselines/analytic.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

using namespace urcgc;

double run(int k, int f, int n) {
  harness::ExperimentConfig config;
  config.protocol.n = n;
  config.protocol.k_attempts = k;
  config.workload.load = 0.5;
  config.workload.total_messages = 20 * n;
  config.faults.crashes = {{static_cast<ProcessId>(n - 1), 4 * 20}};
  config.faults.coordinator_crashes = f;
  config.faults.coordinator_crash_start = 5;
  config.seed = 23;
  config.limit_rtd = 6000;

  const auto report = harness::Experiment(config).run();
  if (!report.all_ok()) {
    std::fprintf(stderr, "INVARIANT VIOLATION at K=%d f=%d\n", k, f);
  }
  std::vector<ProcessId> crashed{static_cast<ProcessId>(n - 1)};
  for (int i = 0; i < f; ++i) {
    crashed.push_back(static_cast<ProcessId>((5 + i) % n));
  }
  return report.recovery_time_rtd(crashed, 4 * 20, 20);
}

}  // namespace

int main() {
  constexpr int kN = 12;
  std::printf(
      "Ablation — agreement time vs (K, f); paper bound T <= 2K+f rtd\n"
      "n=%d, one server crash + f consecutive coordinator crashes\n\n",
      kN);

  harness::Table table(
      {"K", "f", "measured T (rtd)", "bound 2K+f", "within bound"});
  bool all_within = true;
  for (int k : {2, 3, 4, 6}) {
    for (int f : {0, 1, 2, 3, 4}) {
      const double t = run(k, f, kN);
      const auto bound = baselines::analytic::urcgc_recovery_rtd(k, f);
      const bool within = t >= 0 && t <= static_cast<double>(bound) + 1.0;
      all_within = all_within && within;
      table.row({harness::Table::num(static_cast<std::int64_t>(k)),
                 harness::Table::num(static_cast<std::int64_t>(f)),
                 harness::Table::num(t, 1),
                 harness::Table::num(bound),
                 within ? "OK" : "EXCEEDED"});
    }
  }
  table.print();
  std::printf("\nall points within 2K+f (+1 slack): %s\n",
              all_within ? "YES" : "NO");
  return all_within ? 0 : 1;
}
