// Ablation: flow control by pausing (urcgc) vs flow control by deleting
// (Psync). Paper Section 6: "Psync also uses some flow control to reduce
// the amount of messages in waiting list. It consists in the deletion of
// the messages exceeding a given upper bound, thus increasing the rate of
// omission failures."
//
// Under the same lossy workload, urcgc's distributed pause bounds memory
// without losing anything (completion just takes longer), while Psync's
// deletion converts memory pressure into extra omissions that its NACK
// machinery then has to repair — or that are simply never delivered.

#include <cstdio>

#include "baselines/runner.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

using namespace urcgc;

struct UrcgcRow {
  double peak_history;
  double end_rtd;
  std::uint64_t lost;  // messages offered but never processed group-wide
  bool ok;
};

UrcgcRow run_urcgc(std::size_t threshold) {
  harness::ExperimentConfig config;
  config.protocol.n = 10;
  config.protocol.history_threshold = threshold;
  config.workload.load = 1.0;
  config.workload.total_messages = 400;
  config.workload.max_pending_per_process = 64;
  config.faults.omission_prob = 1.0 / 150.0;
  config.seed = 43;
  config.limit_rtd = 6000;
  const auto report = harness::Experiment(config).run();
  UrcgcRow row{};
  row.peak_history = report.history_max.max_value();
  row.end_rtd = report.end_rtd;
  row.lost = report.discarded;
  row.ok = report.all_ok() && report.quiescent;
  return row;
}

struct PsyncRow {
  std::uint64_t flow_drops;
  std::uint64_t delivered;
  double end_rtd;
};

PsyncRow run_psync(std::size_t waiting_bound) {
  baselines::BaselineConfig config;
  config.n = 10;
  config.workload.load = 1.0;
  config.workload.total_messages = 400;
  config.workload.max_pending_per_process = 64;
  config.faults.packet_loss = 1.0 / 150.0;
  config.seed = 43;
  config.limit_rtd = 6000;

  config.limit_rtd = 1500;  // the tightest bound can livelock; cap the run
  config.psync_waiting_bound = waiting_bound;
  const auto report = baselines::run_psync(config);
  return PsyncRow{report.flow_drops, report.delivered_events,
                  report.end_rtd};
}

}  // namespace

int main() {
  std::printf(
      "Ablation — flow control by pausing (urcgc) vs deleting (Psync)\n"
      "n=10, 400 messages at saturating load, ~1/150 loss\n\n");

  harness::Table urcgc_table(
      {"urcgc threshold", "peak history", "completion rtd",
       "messages destroyed", "invariants"});
  for (std::size_t threshold : {std::size_t{0}, std::size_t{40}}) {
    const UrcgcRow row = run_urcgc(threshold);
    urcgc_table.row({threshold == 0 ? "off" : "4n=40",
                     harness::Table::num(row.peak_history, 0),
                     harness::Table::num(row.end_rtd, 0),
                     harness::Table::num(row.lost),
                     row.ok ? "OK" : "VIOLATED"});
  }
  urcgc_table.print();

  std::printf("\n");
  harness::Table psync_table({"psync waiting bound", "flow drops",
                              "delivered events", "end rtd"});
  for (std::size_t bound : {std::size_t{0}, std::size_t{16},
                            std::size_t{4}}) {
    const PsyncRow row = run_psync(bound);
    psync_table.row({bound == 0 ? "unbounded" : harness::Table::num(
                                                    std::uint64_t{bound}),
                     harness::Table::num(row.flow_drops),
                     harness::Table::num(row.delivered),
                     harness::Table::num(row.end_rtd, 0)});
  }
  psync_table.print();

  std::printf(
      "\nshape: urcgc bounds memory without destroying anything (slower"
      " completion); Psync's deletion manufactures omissions — the tighter"
      " the bound, the more drops its retransmission machinery must chase"
      " (and delivery can fall short).\n");
  return 0;
}
