#!/usr/bin/env python3
"""Validate a bench JSON document against its documented schema.

Dispatches on the document's "bench" field: BENCH_throughput.json
(bench_throughput), BENCH_recovery.json (bench_recovery) and
BENCH_scale.json (bench_scale) are all supported. Stdlib-only, used by
the CI bench-smoke and scale-smoke jobs and by hand after regenerating a
baseline (see PERFORMANCE.md for the field-by-field schemas). Exits 0 on
success, 1 with a list of violations otherwise.

Usage: check_bench_schema.py BENCH_file.json
"""

import json
import sys

EXPECTED_SCHEMA_VERSION = 1

TOP_LEVEL = {
    "schema_version": int,
    "bench": str,
    "generated_at": str,
    "quick": bool,
    "messages_per_run": int,
    "seed": int,
    "runs": list,
}

THROUGHPUT_RUN_FIELDS = {
    "protocol": str,
    "backend": str,
    "payload_mode": str,
    "pipeline_k": int,
    "mailboxes": str,
    "round_us": int,
    "n": int,
    "payload_bytes": int,
    "seed": int,
    "messages_generated": int,
    "messages_delivered": int,
    "wall_seconds": (int, float),
    "msgs_per_sec": (int, float),
    "deliveries_per_sec": (int, float),
    "delivery_delay_rtd_p50": (int, float),
    "delivery_delay_rtd_p99": (int, float),
    "buffer_allocations": int,
    "buffer_bytes_allocated": int,
    "buffer_bytes_copied": int,
    "bytes_copied_per_delivered_message": (int, float),
    "allocations_per_message": (int, float),
    "ok": bool,
}

RECOVERY_RUN_FIELDS = {
    "backend": str,
    "n": int,
    "omission": (int, float),
    "max_recover_batch": int,
    "seed": int,
    "messages_generated": int,
    "recoveries_issued": int,
    "recovery_batches": int,
    "recovered_messages": int,
    "recovery_continuations": int,
    "recovery_budget_exhausted": int,
    "recovery_cache_hits": int,
    "recover_rsp_bytes": int,
    "roundtrips_per_recovered": (int, float),
    "bytes_per_recovered": (int, float),
    "recovery_latency_rtd_p50": (int, float),
    "recovery_latency_rtd_p99": (int, float),
    "joins": int,
    "joins_admitted": int,
    "join_catchup_batches": int,
    "join_catchup_msgs": int,
    "join_catchup_latency_rtd_p50": (int, float),
    "join_catchup_latency_rtd_p99": (int, float),
    "waiting_peak": int,
    "inbox_peak": int,
    "history_peak": int,
    "wall_seconds": (int, float),
    "ok": bool,
}

SCALE_RUN_FIELDS = {
    "backend": str,
    "encoding": str,
    "n": int,
    "senders": int,
    "snapshot_every": int,
    "seed": int,
    "messages_generated": int,
    "messages_delivered": int,
    "request_bytes": int,
    "decision_bytes": int,
    "control_bytes_per_delivery": (int, float),
    "delta_fallbacks": int,
    "delta_anchor_miss": int,
    "wall_seconds": (int, float),
    "ok": bool,
}

PROTOCOLS = {"urcgc", "cbcast", "psync"}
BACKENDS = {"sim", "threads", "socket"}
PAYLOAD_MODES = {"shared", "per_copy"}
MAILBOXES = {"spsc", "mutex", "none"}
ENCODINGS = {"full", "delta"}

# bench_scale's acceptance gate: from this group size up, the delta
# encoding must cut control bytes per delivery by at least this factor.
SCALE_RATIO_GATE_N = 1000
SCALE_REQUIRED_RATIO = 5.0


def check_common_run(run, where, run_fields, err):
    """Field presence/type checks shared by every bench flavour."""
    bad = False
    for field, kind in run_fields.items():
        if field not in run:
            err(f"{where} missing field {field!r}")
            bad = True
        elif not isinstance(run[field], kind) or isinstance(
                run[field], bool) != (kind is bool):
            err(f"{where}.{field} has wrong type")
            bad = True
    for field in run:
        if field not in run_fields:
            err(f"{where} has unknown field {field!r}")
            bad = True
    return not bad


def check_throughput_run(run, where, err):
    if run["protocol"] not in PROTOCOLS:
        err(f"{where}.protocol {run['protocol']!r} not in "
            f"{sorted(PROTOCOLS)}")
    if run["payload_mode"] not in PAYLOAD_MODES:
        err(f"{where}.payload_mode {run['payload_mode']!r} not in "
            f"{sorted(PAYLOAD_MODES)}")
    if run["pipeline_k"] < 1:
        err(f"{where}.pipeline_k must be >= 1")
    if run["pipeline_k"] > 1 and run["protocol"] != "urcgc":
        err(f"{where}: pipeline_k > 1 on baseline {run['protocol']!r}")
    if run["mailboxes"] not in MAILBOXES:
        err(f"{where}.mailboxes {run['mailboxes']!r} not in "
            f"{sorted(MAILBOXES)}")
    if run["backend"] == "sim" and run["mailboxes"] != "none":
        err(f"{where}: sim backend has no mailboxes "
            f"(got {run['mailboxes']!r})")
    if run["backend"] in ("threads", "socket") and run["mailboxes"] == "none":
        # The socket runtime layers UDP transport over the threaded
        # execution model, so it too runs on real mailboxes.
        err(f"{where}: {run['backend']} backend must state its mailbox kind")
    if run["round_us"] < 0:
        err(f"{where}.round_us must be >= 0 (0 = free-running)")
    if run["backend"] == "sim" and run["round_us"] != 0:
        err(f"{where}: sim runs in virtual time, round_us must be 0")
    if run["payload_bytes"] <= 0:
        err(f"{where}.payload_bytes must be positive")
    if run["messages_delivered"] < run["messages_generated"]:
        # Every generated message is delivered at least at its origin.
        err(f"{where}: delivered {run['messages_delivered']} < "
            f"generated {run['messages_generated']}")
    if (run["payload_mode"] == "shared" and run["buffer_bytes_copied"]
            and run["backend"] != "socket"):
        # Socket runs legitimately copy once per received datagram (kernel
        # buffer -> SharedBuffer); the in-memory subnets must stay zero-copy.
        err(f"{where}: shared-mode run copied "
            f"{run['buffer_bytes_copied']} bytes (zero-copy regression)")


def check_recovery_run(run, where, err):
    if not 0.0 <= run["omission"] <= 1.0:
        err(f"{where}.omission {run['omission']} outside [0, 1]")
    if run["max_recover_batch"] < 1:
        err(f"{where}.max_recover_batch must be >= 1")
    if run["recovered_messages"] > 0 and run["recoveries_issued"] == 0:
        err(f"{where}: recovered messages without any recovery request")
    if run["recovery_continuations"] > run["recoveries_issued"]:
        err(f"{where}: continuations exceed recoveries issued")
    if run["recovered_messages"] and not run["recover_rsp_bytes"]:
        err(f"{where}: recovered messages but zero RecoverRsp bytes")
    if run["joins"] < 0 or run["joins_admitted"] > run["joins"]:
        err(f"{where}: joins_admitted {run['joins_admitted']} outside "
            f"[0, joins]")
    if run["joins"] == 0 and (run["join_catchup_batches"]
                              or run["join_catchup_msgs"]):
        err(f"{where}: join catch-up counters without a configured joiner")
    if run["joins_admitted"] and not run["join_catchup_batches"]:
        err(f"{where}: a joiner was admitted without any catch-up batch")


def check_scale_run(run, where, err):
    if run["backend"] != "sim":
        err(f"{where}: bench_scale runs on the sim (got {run['backend']!r})")
    if run["encoding"] not in ENCODINGS:
        err(f"{where}.encoding {run['encoding']!r} not in "
            f"{sorted(ENCODINGS)}")
    if not 1 <= run["senders"] <= run["n"]:
        err(f"{where}.senders {run['senders']} outside [1, n]")
    if run["snapshot_every"] < 1:
        err(f"{where}.snapshot_every must be >= 1")
    if run["messages_delivered"] < run["messages_generated"]:
        err(f"{where}: delivered {run['messages_delivered']} < "
            f"generated {run['messages_generated']}")
    if run["request_bytes"] == 0 or run["decision_bytes"] == 0:
        err(f"{where}: a run that delivered messages must have moved "
            f"control traffic in both classes")
    if run["encoding"] == "full" and (run["delta_fallbacks"]
                                      or run["delta_anchor_miss"]):
        err(f"{where}: full-encoding run reports delta counters")


def check_scale_ratios(runs, err):
    """Cross-run gate: delta must beat full at every n, >= 5x at n >= 1000."""
    by_n = {}
    for i, run in enumerate(runs):
        if not isinstance(run, dict) or run.get("encoding") not in ENCODINGS:
            continue
        if by_n.setdefault(run["n"], {}).setdefault(
                run["encoding"], run) is not run:
            err(f"runs[{i}]: duplicate (n, encoding) point")
    for n, points in sorted(by_n.items()):
        if len(points) != 2:
            continue  # one-encoding documents (e.g. a quick smoke) are fine
        full = points["full"]["control_bytes_per_delivery"]
        delta = points["delta"]["control_bytes_per_delivery"]
        if delta <= 0:
            err(f"n={n}: delta bytes/delivery must be positive")
            continue
        if delta >= full:
            err(f"n={n}: delta {delta} >= full {full} bytes/delivery")
        elif n >= SCALE_RATIO_GATE_N and full / delta < SCALE_REQUIRED_RATIO:
            err(f"n={n}: reduction {full / delta:.2f}x below the required "
                f"{SCALE_REQUIRED_RATIO}x")


def check(doc):
    errors = []

    def err(msg):
        errors.append(msg)

    for field, kind in TOP_LEVEL.items():
        if field not in doc:
            err(f"missing top-level field {field!r}")
        elif not isinstance(doc[field], kind):
            err(f"top-level field {field!r} is not {kind.__name__}")
    for field in doc:
        if field not in TOP_LEVEL:
            err(f"unknown top-level field {field!r}")
    if errors:
        return errors

    if doc["schema_version"] != EXPECTED_SCHEMA_VERSION:
        err(f"schema_version {doc['schema_version']} != "
            f"{EXPECTED_SCHEMA_VERSION}")
    flavours = {
        "bench_throughput": (THROUGHPUT_RUN_FIELDS, check_throughput_run),
        "bench_recovery": (RECOVERY_RUN_FIELDS, check_recovery_run),
        "bench_scale": (SCALE_RUN_FIELDS, check_scale_run),
    }
    if doc["bench"] not in flavours:
        err(f"bench is {doc['bench']!r}, expected one of "
            f"{sorted(flavours)}")
        return errors
    run_fields, check_specific = flavours[doc["bench"]]
    if not doc["runs"]:
        err("runs is empty")

    for i, run in enumerate(doc["runs"]):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            err(f"{where} is not an object")
            continue
        if not check_common_run(run, where, run_fields, err):
            continue
        if run["backend"] not in BACKENDS:
            err(f"{where}.backend {run['backend']!r} not in "
                f"{sorted(BACKENDS)}")
        if run["n"] < 2:
            err(f"{where}.n = {run['n']} < 2")
        if run["wall_seconds"] < 0:
            err(f"{where}.wall_seconds negative")
        if not run["ok"]:
            err(f"{where}: run reported validation failure (ok=false)")
        check_specific(run, where, err)
    if doc["bench"] == "bench_scale":
        check_scale_ratios(doc["runs"], err)
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot parse {sys.argv[1]}: {e}", file=sys.stderr)
        return 1
    errors = check(doc)
    if errors:
        for e in errors:
            print(f"SCHEMA VIOLATION: {e}", file=sys.stderr)
        return 1
    print(f"{sys.argv[1]}: schema OK ({len(doc['runs'])} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
