// urcgc_sim — command-line experiment runner.
//
// Runs a single urcgc (or baseline) experiment from flags and prints the
// report; the scripting-friendly face of the harness.
//
//   urcgc_sim --n=10 --k=3 --load=0.5 --messages=300 \
//             --omission=0.002 --crash=7@400 --crash=2@600 --seed=1
//   urcgc_sim --protocol=cbcast --n=8 --messages=200 --storm=2
//   urcgc_sim --n=40 --messages=480 --threshold=320 --csv
//
// Exit status: 0 iff the run reached quiescence with all URCGC clauses
// intact.

#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/runner.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "obs/registry.hpp"
#include "trace/trace.hpp"

namespace {

using namespace urcgc;

struct Options {
  std::string protocol = "urcgc";  // urcgc | cbcast | psync
  std::string backend = "sim";     // sim | threads
  std::int64_t tick_ns = 50'000;   // threads backend: real ns per tick
  int n = 10;
  int k = 3;
  int pipeline_k = 1;
  std::string control_encoding = "full";
  double load = 0.5;
  std::int64_t messages = 200;
  double cross_dep = 0.3;
  double omission = 0.0;
  double packet_loss = 0.0;
  std::vector<double> joins;  // join request rtds, one joiner each
  std::vector<std::pair<ProcessId, Tick>> crashes;
  int coordinator_crashes = 0;
  int storm = -1;  // cbcast flush-coordinator storm
  std::size_t threshold = 0;
  std::string causality = "intermediate";
  bool use_transport = false;
  bool per_copy = false;
  bool mutex_mailboxes = false;  // threads: legacy mutex mailbox path
  bool csv = false;
  bool verbose = false;
  std::string trace_path;
  std::string metrics_out_path;
  std::string metrics_csv_path;
  bool metrics_summary = false;
  std::uint64_t seed = 1;
  double limit_rtd = 6000;

  [[nodiscard]] bool wants_metrics() const {
    return !metrics_out_path.empty() || !metrics_csv_path.empty() ||
           metrics_summary;
  }
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --protocol=urcgc|cbcast|psync   protocol to run (default urcgc)\n"
      "  --backend=sim|threads|socket    runtime backend (default sim;\n"
      "                                  threads = one OS thread/process,\n"
      "                                  socket = threads + one UDP socket\n"
      "                                  per process over localhost;\n"
      "                                  non-deterministic; all protocols)\n"
      "  --tick-ns=NS                    threads: real ns per tick (50000;\n"
      "                                  0 = free-running)\n"
      "  --n=N                           group size (default 10)\n"
      "  --k=K                           failure-detection attempts (3)\n"
      "  --pipeline-k=K                  subruns in flight (1 = paced;\n"
      "                                  >1 pipelines DECISIONs and raises\n"
      "                                  the workload burst to match)\n"
      "  --control-encoding=full|delta   control-plane wire encoding\n"
      "                                  (full = self-contained frames,\n"
      "                                  delta = anchored sparse frames)\n"
      "  --load=L                        msgs/process/round in [0,1] (0.5)\n"
      "  --messages=M                    total offered messages (200)\n"
      "  --cross-dep=P                   cross-process dep probability (0.3)\n"
      "  --omission=P                    send+recv omission probability\n"
      "  --packet-loss=P                 subnet loss probability\n"
      "  --crash=PID@TICK                fail-stop schedule (repeatable)\n"
      "  --joins=RTD[,RTD...]            urcgc: start one joiner per entry\n"
      "                                  at that rtd; ids continue after\n"
      "                                  the founders (--n=4 --joins=6 ->\n"
      "                                  p4 requests admission at 6 rtd)\n"
      "  --coordinator-crashes=F         urcgc Fig.5 storm\n"
      "  --storm=F                       cbcast flush-coordinator storm\n"
      "  --threshold=H                   history flow-control threshold\n"
      "  --causality=general|intermediate|temporal\n"
      "  --transport                     mount on h-reply transport\n"
      "  --per-copy                      legacy clone-per-destination\n"
      "                                  payload cost model (A/B against\n"
      "                                  the zero-copy fan-out)\n"
      "  --mutex-mailboxes               threads: legacy mutex-guarded\n"
      "                                  mailboxes (A/B against the\n"
      "                                  lock-free SPSC rings)\n"
      "  --trace=FILE                    write a JSONL protocol trace\n"
      "  --metrics-out=FILE              write obs registry as JSONL\n"
      "  --metrics-csv=FILE              write obs registry as CSV\n"
      "  --metrics-summary               print a metrics summary table\n"
      "  --seed=S --limit-rtd=T --csv --verbose\n",
      argv0);
  std::exit(2);
}

bool consume(std::string_view arg, std::string_view key,
             std::string_view& value) {
  if (arg.substr(0, key.size()) != key) return false;
  if (arg.size() == key.size()) {
    value = "";
    return true;
  }
  if (arg[key.size()] != '=') return false;
  value = arg.substr(key.size() + 1);
  return true;
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (consume(arg, "--protocol", value)) {
      opt.protocol = value;
    } else if (consume(arg, "--backend", value)) {
      opt.backend = value;
    } else if (consume(arg, "--tick-ns", value)) {
      opt.tick_ns = std::atoll(value.data());
    } else if (consume(arg, "--n", value)) {
      opt.n = std::atoi(value.data());
    } else if (consume(arg, "--k", value)) {
      opt.k = std::atoi(value.data());
    } else if (consume(arg, "--pipeline-k", value)) {
      opt.pipeline_k = std::atoi(value.data());
    } else if (consume(arg, "--control-encoding", value)) {
      opt.control_encoding = value;
    } else if (consume(arg, "--load", value)) {
      opt.load = std::atof(value.data());
    } else if (consume(arg, "--messages", value)) {
      opt.messages = std::atoll(value.data());
    } else if (consume(arg, "--cross-dep", value)) {
      opt.cross_dep = std::atof(value.data());
    } else if (consume(arg, "--omission", value)) {
      opt.omission = std::atof(value.data());
    } else if (consume(arg, "--packet-loss", value)) {
      opt.packet_loss = std::atof(value.data());
    } else if (consume(arg, "--crash", value)) {
      const std::string s(value);
      const auto at = s.find('@');
      if (at == std::string::npos) usage(argv[0]);
      opt.crashes.push_back({std::atoi(s.substr(0, at).c_str()),
                             std::atoll(s.substr(at + 1).c_str())});
    } else if (consume(arg, "--joins", value)) {
      std::string s(value);
      std::size_t pos = 0;
      while (pos <= s.size()) {
        const auto comma = s.find(',', pos);
        const std::string item =
            s.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos);
        if (item.empty()) usage(argv[0]);
        const double rtd = std::atof(item.c_str());
        if (rtd < 0) usage(argv[0]);
        opt.joins.push_back(rtd);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (consume(arg, "--coordinator-crashes", value)) {
      opt.coordinator_crashes = std::atoi(value.data());
    } else if (consume(arg, "--storm", value)) {
      opt.storm = std::atoi(value.data());
    } else if (consume(arg, "--threshold", value)) {
      opt.threshold = static_cast<std::size_t>(std::atoll(value.data()));
    } else if (consume(arg, "--causality", value)) {
      opt.causality = value;
    } else if (consume(arg, "--transport", value)) {
      opt.use_transport = true;
    } else if (consume(arg, "--per-copy", value)) {
      opt.per_copy = true;
    } else if (consume(arg, "--mutex-mailboxes", value)) {
      opt.mutex_mailboxes = true;
    } else if (consume(arg, "--seed", value)) {
      opt.seed = std::strtoull(value.data(), nullptr, 10);
    } else if (consume(arg, "--limit-rtd", value)) {
      opt.limit_rtd = std::atof(value.data());
    } else if (consume(arg, "--trace", value)) {
      opt.trace_path = value;
    } else if (consume(arg, "--metrics-out", value)) {
      opt.metrics_out_path = value;
    } else if (consume(arg, "--metrics-csv", value)) {
      opt.metrics_csv_path = value;
    } else if (consume(arg, "--metrics-summary", value)) {
      opt.metrics_summary = true;
    } else if (consume(arg, "--csv", value)) {
      opt.csv = true;
    } else if (consume(arg, "--verbose", value)) {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %.*s\n",
                   static_cast<int>(arg.size()), arg.data());
      usage(argv[0]);
    }
  }
  return opt;
}

/// Writes the registry to the requested sinks. Returns false (with a
/// message on stderr) if a file could not be opened.
bool export_metrics(const obs::Registry& registry, const Options& opt) {
  if (!opt.metrics_out_path.empty()) {
    std::ofstream out(opt.metrics_out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open metrics file %s\n",
                   opt.metrics_out_path.c_str());
      return false;
    }
    registry.write_jsonl(out);
    std::fprintf(stderr, "wrote metrics JSONL to %s\n",
                 opt.metrics_out_path.c_str());
  }
  if (!opt.metrics_csv_path.empty()) {
    std::ofstream out(opt.metrics_csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open metrics file %s\n",
                   opt.metrics_csv_path.c_str());
      return false;
    }
    registry.write_csv(out);
    std::fprintf(stderr, "wrote metrics CSV to %s\n",
                 opt.metrics_csv_path.c_str());
  }
  if (opt.metrics_summary) registry.write_summary(std::cout);
  return true;
}

int run_urcgc(const Options& opt) {
  harness::ExperimentConfig config;
  config.protocol.n = opt.n;
  config.protocol.k_attempts = opt.k;
  config.protocol.history_threshold = opt.threshold;
  if (opt.pipeline_k < 1) {
    std::fprintf(stderr, "--pipeline-k must be >= 1\n");
    return 2;
  }
  config.protocol.max_subruns_in_flight = opt.pipeline_k;
  config.workload.burst = opt.pipeline_k;
  if (opt.control_encoding == "full") {
    config.protocol.control_encoding = core::ControlEncoding::kFull;
  } else if (opt.control_encoding == "delta") {
    config.protocol.control_encoding = core::ControlEncoding::kDelta;
  } else {
    std::fprintf(stderr, "unknown control encoding: %s\n",
                 opt.control_encoding.c_str());
    return 2;
  }
  if (opt.causality == "general") {
    config.protocol.causality = core::CausalityMode::kGeneral;
  } else if (opt.causality == "temporal") {
    config.protocol.causality = core::CausalityMode::kTemporal;
  } else if (opt.causality == "intermediate") {
    config.protocol.causality = core::CausalityMode::kIntermediate;
  } else {
    std::fprintf(stderr, "unknown causality mode: %s\n",
                 opt.causality.c_str());
    return 2;
  }
  config.workload.load = opt.load;
  config.workload.total_messages = opt.messages;
  config.workload.cross_dep_prob = opt.cross_dep;
  config.faults.omission_prob = opt.omission;
  config.faults.packet_loss = opt.packet_loss;
  config.faults.crashes = opt.crashes;
  config.faults.coordinator_crashes = opt.coordinator_crashes;
  config.join_rtds = opt.joins;
  config.use_transport = opt.use_transport;
  config.net.per_copy_payloads = opt.per_copy;
  config.transport.h_all_on_broadcast = true;
  config.seed = opt.seed;
  config.limit_rtd = opt.limit_rtd;
  if (opt.backend == "threads" || opt.backend == "socket") {
    if (opt.tick_ns < 0) {
      std::fprintf(stderr, "--tick-ns must be >= 0 (0 = free-running)\n");
      return 2;
    }
    config.backend = opt.backend == "socket" ? harness::Backend::kSocket
                                             : harness::Backend::kThreads;
    config.thread_tick_ns = opt.tick_ns;
    config.lockfree_mailboxes = !opt.mutex_mailboxes;
  } else if (opt.backend != "sim") {
    std::fprintf(stderr, "unknown backend: %s\n", opt.backend.c_str());
    return 2;
  }

  // Optional JSONL trace (everything except per-datagram send events,
  // which would dominate the file). With --metrics-* but no --trace the
  // recorder still observes — it feeds the trace.events.* counters — but
  // its in-memory log keeps only the rare kinds so long runs stay cheap.
  obs::Registry registry(opt.n + static_cast<int>(opt.joins.size()));
  if (opt.wants_metrics()) config.metrics = &registry;

  std::vector<trace::EventKind> keep{
      trace::EventKind::kHalt, trace::EventKind::kDiscarded,
      trace::EventKind::kRequestDropped, trace::EventKind::kJoined};
  if (!opt.trace_path.empty()) {
    keep.insert(keep.end(),
                {trace::EventKind::kGenerated, trace::EventKind::kProcessed,
                 trace::EventKind::kDecision, trace::EventKind::kCleaned,
                 trace::EventKind::kRecovery,
                 trace::EventKind::kFlowBlocked});
  }
  trace::TraceRecorder tracer(std::move(keep),
                              opt.wants_metrics() ? &registry : nullptr);
  if (!opt.trace_path.empty() || opt.wants_metrics()) {
    config.extra_observer = &tracer;
  }

  const auto report = harness::Experiment(config).run();

  if (opt.wants_metrics() && !export_metrics(registry, opt)) return 2;

  if (!opt.trace_path.empty()) {
    std::ofstream trace_file(opt.trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open trace file %s\n",
                   opt.trace_path.c_str());
      return 2;
    }
    tracer.write_jsonl(trace_file);
    std::fprintf(stderr, "wrote %zu trace events to %s\n", tracer.size(),
                 opt.trace_path.c_str());
  }

  if (opt.csv) {
    std::printf(
        "protocol,n,k,load,messages,omission,packet_loss,seed,end_rtd,"
        "mean_delay_rtd,p99_delay_rtd,processed_events,control_msgs,"
        "control_bytes,discarded,quiescent,atomicity,ordering\n");
    std::printf(
        "urcgc,%d,%d,%g,%lld,%g,%g,%llu,%.2f,%.4f,%.4f,%llu,%llu,%llu,%llu,"
        "%d,%d,%d\n",
        opt.n, opt.k, opt.load, static_cast<long long>(opt.messages),
        opt.omission, opt.packet_loss,
        static_cast<unsigned long long>(opt.seed), report.end_rtd,
        report.delay_rtd.mean, report.delay_rtd.p99,
        static_cast<unsigned long long>(report.processed_events),
        static_cast<unsigned long long>(report.traffic.control_count()),
        static_cast<unsigned long long>(report.traffic.control_bytes()),
        static_cast<unsigned long long>(report.discarded),
        report.quiescent ? 1 : 0, report.atomicity_ok ? 1 : 0,
        report.ordering_ok ? 1 : 0);
  } else {
    std::printf("urcgc run: n=%d K=%d load=%g messages=%lld seed=%llu\n",
                opt.n, opt.k, opt.load,
                static_cast<long long>(opt.messages),
                static_cast<unsigned long long>(opt.seed));
    std::printf("  finished             : %.1f rtd (quiescent: %s)\n",
                report.end_rtd, report.quiescent ? "yes" : "NO");
    std::printf("  mean / p99 delay     : %.3f / %.3f rtd\n",
                report.delay_rtd.mean, report.delay_rtd.p99);
    std::printf("  generated / processed: %llu / %llu events\n",
                static_cast<unsigned long long>(report.generated),
                static_cast<unsigned long long>(report.processed_events));
    std::printf("  control traffic      : %llu msgs, %llu bytes\n",
                static_cast<unsigned long long>(report.traffic.control_count()),
                static_cast<unsigned long long>(report.traffic.control_bytes()));
    std::printf("  peak history / wait  : %.0f / %.0f\n",
                report.history_max.max_value(),
                report.waiting_max.max_value());
    std::printf("  discarded (orphans)  : %llu\n",
                static_cast<unsigned long long>(report.discarded));
    std::printf("  wire buffers         : %llu allocs, %llu B allocated, "
                "%llu B copied%s\n",
                static_cast<unsigned long long>(report.buffers.allocations),
                static_cast<unsigned long long>(
                    report.buffers.bytes_allocated),
                static_cast<unsigned long long>(report.buffers.bytes_copied),
                opt.per_copy ? " (per-copy mode)" : "");
    for (const auto& join : report.joins) {
      std::printf("  join: p%d admitted at tick %lld (baseline %zu seqs)\n",
                  join.p, static_cast<long long>(join.at),
                  join.baseline.size());
    }
    for (const auto& halt : report.halts) {
      std::printf("  halt: p%d (%s) at tick %lld\n", halt.p,
                  to_string(halt.reason), static_cast<long long>(halt.at));
    }
    std::printf("  atomicity / ordering : %s / %s\n",
                report.atomicity_ok ? "OK" : "VIOLATED",
                report.ordering_ok ? "OK" : "VIOLATED");
    if (opt.verbose) {
      std::printf("  decisions: %zu (last subrun %lld)\n",
                  report.decisions.size(),
                  report.decisions.empty()
                      ? -1LL
                      : static_cast<long long>(
                            report.decisions.back().subrun));
      for (const auto& violation : report.violations) {
        std::printf("  !! %s\n", violation.c_str());
      }
    }
  }
  return report.quiescent && report.all_ok() ? 0 : 1;
}

int run_baseline(const Options& opt) {
  baselines::BaselineConfig config;
  config.n = opt.n;
  config.k_attempts = opt.k;
  config.workload.load = opt.load;
  config.workload.total_messages = opt.messages;
  config.faults.crashes = opt.crashes;
  config.faults.packet_loss = opt.packet_loss;
  config.faults.flush_coordinator_crashes = opt.storm;
  config.per_copy_payloads = opt.per_copy;
  if (opt.backend == "threads" || opt.backend == "socket") {
    if (opt.tick_ns < 0) {
      std::fprintf(stderr, "--tick-ns must be >= 0 (0 = free-running)\n");
      return 2;
    }
    config.backend = opt.backend == "socket" ? baselines::Backend::kSocket
                                             : baselines::Backend::kThreads;
    config.thread_tick_ns = opt.tick_ns;
  } else if (opt.backend != "sim") {
    std::fprintf(stderr, "unknown backend: %s\n", opt.backend.c_str());
    return 2;
  }
  config.seed = opt.seed;
  config.limit_rtd = opt.limit_rtd;

  obs::Registry registry(opt.n);
  if (opt.wants_metrics()) config.metrics = &registry;

  const auto report = opt.protocol == "cbcast"
                          ? baselines::run_cbcast(config)
                          : baselines::run_psync(config);

  if (opt.wants_metrics() && !export_metrics(registry, opt)) return 2;
  std::printf("%s run: n=%d K=%d messages=%lld seed=%llu\n",
              opt.protocol.c_str(), opt.n, opt.k,
              static_cast<long long>(opt.messages),
              static_cast<unsigned long long>(opt.seed));
  std::printf("  finished            : %.1f rtd\n", report.end_rtd);
  std::printf("  mean delay          : %.3f rtd\n", report.delay_rtd.mean);
  std::printf("  delivered events    : %llu\n",
              static_cast<unsigned long long>(report.delivered_events));
  std::printf("  survivors           : %d\n", report.survivors);
  std::printf("  blocked time        : %.1f rtd\n", report.blocked_rtd);
  if (report.view_change_rtd >= 0) {
    std::printf("  view change         : %.1f rtd\n", report.view_change_rtd);
  }
  std::printf("  wire buffers        : %llu allocs, %llu B allocated, "
              "%llu B copied%s\n",
              static_cast<unsigned long long>(report.buffers.allocations),
              static_cast<unsigned long long>(report.buffers.bytes_allocated),
              static_cast<unsigned long long>(report.buffers.bytes_copied),
              opt.per_copy ? " (per-copy mode)" : "");
  std::printf("  causal order        : %s\n",
              report.causal_order_ok ? "OK" : "VIOLATED");
  return report.causal_order_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.protocol == "urcgc") return run_urcgc(opt);
  if (opt.protocol == "cbcast" || opt.protocol == "psync") {
    return run_baseline(opt);
  }
  std::fprintf(stderr, "unknown protocol: %s\n", opt.protocol.c_str());
  return 2;
}
