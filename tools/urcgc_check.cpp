// urcgc_check — schedule-exploration checker.
//
// Explores randomized fault/schedule scenarios, runs each through the
// experiment harness with a trace attached, and checks every URCGC clause
// with the trace oracle (src/check). Failures are replayable from their
// (seed, schedule) pair and shrinkable to a minimal repro case.
//
//   urcgc-check --seeds 1000                      # explore on the sim
//   urcgc-check --seeds 200 --backend=threads
//   urcgc-check --seeds 500 --mutation=skip-request-merge --shrink \
//               --repro-out repro.case            # checker self-test
//   urcgc-check --replay repro.case               # re-run one case
//
// Exit status: 0 iff every execution passed every clause.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "check/case.hpp"
#include "check/explorer.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"
#include "obs/registry.hpp"
#include "trace/trace.hpp"

namespace {

using namespace urcgc;

struct Options {
  int seeds = 100;
  std::uint64_t base_seed = 1;
  std::string backend = "sim";  // sim | threads | both
  std::string family = "any";
  std::string mutation = "none";
  std::string pipeline_k = "1";
  std::string control_encoding = "full";
  bool shrink = false;
  int max_failures = 1;
  int shrink_evals = 200;
  std::string replay_path;
  std::string trace_out_path;
  std::string report_path;
  std::string repro_out_path;
  std::string metrics_out_path;
  bool verbose = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --seeds=N              executions per backend (default 100)\n"
      "  --base-seed=S          first seed; execution i uses S+i (1)\n"
      "  --backend=sim|threads|socket|both|all\n"
      "                         runtime backend(s) to explore (sim);\n"
      "                         both = sim+threads, all = +socket\n"
      "  --family=NAME          restrict generation to one scenario\n"
      "                         family: any | fault-free | omission-window\n"
      "                         | crashes | partition | sustained-omission\n"
      "                         | churn (joins x leaves x crashes)\n"
      "  --mutation=NAME        inject a protocol defect (checker\n"
      "                         self-test): none | skip-request-merge |\n"
      "                         ignore-one-dep\n"
      "  --pipeline-k=LIST      comma-separated pipelining depths to sweep\n"
      "                         (Config::max_subruns_in_flight); each case\n"
      "                         draws one uniformly (default 1)\n"
      "  --control-encoding=full|delta|both\n"
      "                         control-plane wire encoding(s) to sweep;\n"
      "                         both = each case draws one uniformly (full)\n"
      "  --shrink               minimize the first failing case\n"
      "  --shrink-evals=N       shrink evaluation budget (200)\n"
      "  --max-failures=N       stop after N failures; 0 = never (1)\n"
      "  --replay=FILE          run one saved case instead of exploring\n"
      "  --trace-out=FILE       with --replay: dump the full JSONL trace\n"
      "  --report=FILE          write a JSON report (schema\n"
      "                         urcgc-check-report-v1)\n"
      "  --repro-out=FILE       write the (shrunk) failing case\n"
      "  --metrics-out=FILE     write explorer obs counters as JSONL\n"
      "  --verbose\n",
      argv0);
  std::exit(2);
}

bool consume(std::string_view arg, std::string_view key,
             std::string_view& value) {
  if (arg.substr(0, key.size()) != key) return false;
  if (arg.size() == key.size()) {
    value = "";
    return true;
  }
  if (arg[key.size()] != '=') return false;
  value = arg.substr(key.size() + 1);
  return true;
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (consume(arg, "--seeds", value)) {
      opt.seeds = std::atoi(value.data());
    } else if (consume(arg, "--base-seed", value)) {
      opt.base_seed = std::strtoull(value.data(), nullptr, 10);
    } else if (consume(arg, "--backend", value)) {
      opt.backend = value;
    } else if (consume(arg, "--family", value)) {
      opt.family = value;
    } else if (consume(arg, "--mutation", value)) {
      opt.mutation = value;
    } else if (consume(arg, "--pipeline-k", value)) {
      opt.pipeline_k = value;
    } else if (consume(arg, "--control-encoding", value)) {
      opt.control_encoding = value;
    } else if (arg == "--shrink") {
      opt.shrink = true;
    } else if (consume(arg, "--shrink-evals", value)) {
      opt.shrink_evals = std::atoi(value.data());
    } else if (consume(arg, "--max-failures", value)) {
      opt.max_failures = std::atoi(value.data());
    } else if (consume(arg, "--replay", value)) {
      opt.replay_path = value;
    } else if (consume(arg, "--trace-out", value)) {
      opt.trace_out_path = value;
    } else if (consume(arg, "--report", value)) {
      opt.report_path = value;
    } else if (consume(arg, "--repro-out", value)) {
      opt.repro_out_path = value;
    } else if (consume(arg, "--metrics-out", value)) {
      opt.metrics_out_path = value;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.seeds < 1 && opt.replay_path.empty()) usage(argv[0]);
  if (opt.backend != "sim" && opt.backend != "threads" &&
      opt.backend != "socket" && opt.backend != "both" &&
      opt.backend != "all") {
    usage(argv[0]);
  }
  return opt;
}

check::Family parse_family(const std::string& name, const char* argv0) {
  if (name == "any") return check::Family::kAny;
  if (name == "fault-free") return check::Family::kFaultFree;
  if (name == "omission-window") return check::Family::kOmissionWindow;
  if (name == "crashes") return check::Family::kCrashes;
  if (name == "partition") return check::Family::kPartition;
  if (name == "sustained-omission") return check::Family::kSustainedOmission;
  if (name == "churn") return check::Family::kChurn;
  usage(argv0);
}

std::vector<int> parse_pipeline_k(const std::string& list,
                                  const char* argv0) {
  std::vector<int> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int k = std::atoi(item.c_str());
    if (k < 1) usage(argv0);
    out.push_back(k);
  }
  if (out.empty()) usage(argv0);
  return out;
}

std::vector<core::ControlEncoding> parse_encodings(const std::string& name,
                                                   const char* argv0) {
  if (name == "full") return {core::ControlEncoding::kFull};
  if (name == "delta") return {core::ControlEncoding::kDelta};
  if (name == "both") {
    return {core::ControlEncoding::kFull, core::ControlEncoding::kDelta};
  }
  usage(argv0);
}

core::ProtocolMutation parse_mutation(const std::string& name,
                                      const char* argv0) {
  if (name == "none") return core::ProtocolMutation::kNone;
  if (name == "skip-request-merge") {
    return core::ProtocolMutation::kSkipRequestMerge;
  }
  if (name == "ignore-one-dep") return core::ProtocolMutation::kIgnoreOneDep;
  usage(argv0);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_failure_json(std::ostream& os, const check::CaseOutcome& failure,
                         const std::string& backend_name) {
  const check::Violation* v = failure.oracle.first();
  os << "{\"backend\":\"" << backend_name << "\",\"seed\":"
     << failure.config.seed << ",\"schedule\":" << failure.config.schedule
     << ",\"n\":" << failure.config.n
     << ",\"messages\":" << failure.config.messages
     << ",\"faults\":" << failure.config.fault_count() << ",\"clause\":\""
     << (v != nullptr ? std::string(check::to_string(v->clause)) : "?")
     << "\",\"message\":\"" << json_escape(failure.first_problem())
     << "\",\"case\":\"" << json_escape(failure.config.serialize()) << "\"}";
}

struct BackendResult {
  std::string name;
  check::ExplorerReport report;
};

int run_replay(const Options& opt) {
  std::ifstream in(opt.replay_path);
  if (!in) {
    std::fprintf(stderr, "urcgc-check: cannot open %s\n",
                 opt.replay_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto parsed = check::CaseConfig::parse(buffer.str(), &error);
  if (!parsed) {
    std::fprintf(stderr, "urcgc-check: %s: %s\n", opt.replay_path.c_str(),
                 error.c_str());
    return 2;
  }
  trace::TraceRecorder recorder;  // keep everything: replay is for forensics
  const check::CaseOutcome outcome = check::run_case(*parsed, &recorder);
  if (!opt.trace_out_path.empty()) {
    std::ofstream trace_out(opt.trace_out_path);
    recorder.write_jsonl(trace_out);
    std::printf("trace written to %s (%zu events)\n",
                opt.trace_out_path.c_str(), recorder.size());
  }
  std::printf("replay %s: n=%d messages=%lld seed=%llu schedule=%llu -> %s\n",
              opt.replay_path.c_str(), parsed->n,
              static_cast<long long>(parsed->messages),
              static_cast<unsigned long long>(parsed->seed),
              static_cast<unsigned long long>(parsed->schedule),
              outcome.ok() ? "PASS" : "FAIL");
  if (!outcome.ok()) {
    std::printf("  %s\n", outcome.first_problem().c_str());
  }
  return outcome.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.replay_path.empty()) return run_replay(opt);

  const core::ProtocolMutation mutation =
      parse_mutation(opt.mutation, argv[0]);
  std::vector<std::string> backends;
  if (opt.backend == "both") {
    backends = {"sim", "threads"};
  } else if (opt.backend == "all") {
    backends = {"sim", "threads", "socket"};
  } else {
    backends = {opt.backend};
  }

  obs::Registry metrics(0);
  std::vector<BackendResult> results;
  std::optional<check::ShrinkResult> shrunk;

  for (const std::string& backend_name : backends) {
    check::ExplorerOptions explorer;
    explorer.executions = opt.seeds;
    explorer.base_seed = opt.base_seed;
    explorer.backend = backend_name == "threads" ? harness::Backend::kThreads
                       : backend_name == "socket" ? harness::Backend::kSocket
                                                  : harness::Backend::kSim;
    explorer.family = parse_family(opt.family, argv[0]);
    explorer.mutation = mutation;
    explorer.pipeline_k_choices = parse_pipeline_k(opt.pipeline_k, argv[0]);
    explorer.encoding_choices = parse_encodings(opt.control_encoding, argv[0]);
    explorer.max_failures = opt.max_failures;
    explorer.metrics = &metrics;
    const int step = std::max(1, opt.seeds / 10);
    explorer.on_progress = [&](int done, int total, int failures) {
      if (opt.verbose && (done % step == 0 || done == total)) {
        std::fprintf(stderr, "[%s] %d/%d executions, %d violation(s)\n",
                     backend_name.c_str(), done, total, failures);
      }
    };

    check::ExplorerReport report = check::explore(explorer);
    std::printf("%s: %d execution(s), %d violation(s)\n",
                backend_name.c_str(), report.executions, report.violations);
    for (const check::CaseOutcome& failure : report.failures) {
      std::printf("  seed=%llu schedule=%llu n=%d: %s\n",
                  static_cast<unsigned long long>(failure.config.seed),
                  static_cast<unsigned long long>(failure.config.schedule),
                  failure.config.n, failure.first_problem().c_str());
    }

    if (opt.shrink && !shrunk && !report.failures.empty()) {
      check::ShrinkOptions shrink_options;
      shrink_options.max_evaluations = opt.shrink_evals;
      if (opt.verbose) {
        shrink_options.on_step = [](int evals, const check::CaseConfig& b) {
          if (evals % 25 == 0) {
            std::fprintf(stderr,
                         "[shrink] %d evaluations, best n=%d messages=%lld\n",
                         evals, b.n, static_cast<long long>(b.messages));
          }
        };
      }
      shrunk = check::shrink_case(report.failures.front().config,
                                  shrink_options);
      std::printf(
          "shrunk: n %d -> %d, messages %lld -> %lld, faults %zu -> %zu "
          "(%d evaluations)\n",
          shrunk->initial_n, shrunk->minimal.n,
          static_cast<long long>(shrunk->initial_messages),
          static_cast<long long>(shrunk->minimal.messages),
          shrunk->initial_faults, shrunk->minimal.fault_count(),
          shrunk->evaluations);
      std::printf("  still fails with: %s\n",
                  shrunk->outcome.first_problem().c_str());
    }
    results.push_back({backend_name, std::move(report)});
  }

  int total_violations = 0;
  for (const BackendResult& r : results) {
    total_violations += r.report.violations;
  }

  if (!opt.repro_out_path.empty()) {
    const check::CaseConfig* repro = nullptr;
    if (shrunk) {
      repro = &shrunk->minimal;
    } else {
      for (const BackendResult& r : results) {
        if (!r.report.failures.empty()) {
          repro = &r.report.failures.front().config;
          break;
        }
      }
    }
    if (repro != nullptr) {
      std::ofstream out(opt.repro_out_path);
      out << repro->serialize();
      std::printf("repro written to %s\n", opt.repro_out_path.c_str());
    }
  }

  if (!opt.report_path.empty()) {
    std::ofstream out(opt.report_path);
    out << "{\"schema\":\"urcgc-check-report-v1\",\"base_seed\":"
        << opt.base_seed << ",\"seeds\":" << opt.seeds << ",\"mutation\":\""
        << core::to_string(mutation) << "\",\"backends\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"backend\":\"" << results[i].name << "\",\"executions\":"
          << results[i].report.executions << ",\"violations\":"
          << results[i].report.violations << "}";
    }
    out << "],\"violations\":" << total_violations << ",\"failures\":[";
    bool first = true;
    for (const BackendResult& r : results) {
      for (const check::CaseOutcome& failure : r.report.failures) {
        if (!first) out << ",";
        first = false;
        append_failure_json(out, failure, r.name);
      }
    }
    out << "]";
    if (shrunk) {
      const check::Violation* v = shrunk->outcome.oracle.first();
      out << ",\"shrunk\":{\"n\":" << shrunk->minimal.n << ",\"messages\":"
          << shrunk->minimal.messages << ",\"faults\":"
          << shrunk->minimal.fault_count() << ",\"evaluations\":"
          << shrunk->evaluations << ",\"clause\":\""
          << (v != nullptr ? std::string(check::to_string(v->clause)) : "?")
          << "\",\"case\":\"" << json_escape(shrunk->minimal.serialize())
          << "\"}";
    }
    out << "}\n";
  }

  if (!opt.metrics_out_path.empty()) {
    std::ofstream out(opt.metrics_out_path);
    metrics.write_jsonl(out);
  }

  return total_violations == 0 ? 0 : 1;
}
