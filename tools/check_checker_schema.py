#!/usr/bin/env python3
"""Validate a urcgc-check --report document against the documented schema.

Stdlib-only, used by the CI check-smoke job and by hand after an explorer
sweep (see DESIGN.md "Checking & exploration" for the field-by-field
schema). Exits 0 on success, 1 with a list of violations otherwise.

Usage: check_checker_schema.py report.json
"""

import json
import sys

EXPECTED_SCHEMA = "urcgc-check-report-v1"
CASE_HEADER = "urcgc-check-case-v1"

TOP_LEVEL = {
    "schema": str,
    "base_seed": int,
    "seeds": int,
    "mutation": str,
    "backends": list,
    "violations": int,
    "failures": list,
}

BACKEND_FIELDS = {
    "backend": str,
    "executions": int,
    "violations": int,
}

FAILURE_FIELDS = {
    "backend": str,
    "seed": int,
    "schedule": int,
    "n": int,
    "messages": int,
    "faults": int,
    "clause": str,
    "message": str,
    "case": str,
}

BACKENDS = {"sim", "threads", "socket"}
MUTATIONS = {"none", "skip-request-merge", "ignore-one-dep"}
CLAUSES = {"atomicity", "ordering", "stability", "decision-sequence",
           "liveness"}


def check(doc):
    errors = []

    def err(msg):
        errors.append(msg)

    for field, kind in TOP_LEVEL.items():
        if field not in doc:
            err(f"missing top-level field {field!r}")
        elif not isinstance(doc[field], kind):
            err(f"top-level field {field!r} is not {kind.__name__}")
    for field in doc:
        if field not in TOP_LEVEL:
            err(f"unknown top-level field {field!r}")
    if errors:
        return errors

    if doc["schema"] != EXPECTED_SCHEMA:
        err(f"schema {doc['schema']!r} != {EXPECTED_SCHEMA!r}")
    if doc["seeds"] <= 0:
        err(f"seeds = {doc['seeds']} must be positive")
    if doc["mutation"] not in MUTATIONS:
        err(f"mutation {doc['mutation']!r} not in {sorted(MUTATIONS)}")
    if not doc["backends"]:
        err("backends is empty")

    total_violations = 0
    for i, backend in enumerate(doc["backends"]):
        where = f"backends[{i}]"
        if not isinstance(backend, dict):
            err(f"{where} is not an object")
            continue
        for field, kind in BACKEND_FIELDS.items():
            if field not in backend:
                err(f"{where} missing field {field!r}")
            elif not isinstance(backend[field], kind):
                err(f"{where}.{field} has wrong type")
        for field in backend:
            if field not in BACKEND_FIELDS:
                err(f"{where} has unknown field {field!r}")
        if errors:
            continue
        if backend["backend"] not in BACKENDS:
            err(f"{where}.backend {backend['backend']!r} not in "
                f"{sorted(BACKENDS)}")
        if backend["executions"] < 0 or backend["executions"] > doc["seeds"]:
            err(f"{where}.executions = {backend['executions']} outside "
                f"[0, seeds]")
        if backend["violations"] < 0:
            err(f"{where}.violations negative")
        if backend["violations"] > backend["executions"]:
            err(f"{where}: violations {backend['violations']} > "
                f"executions {backend['executions']}")
        total_violations += backend["violations"]

    if not errors and doc["violations"] != total_violations:
        err(f"violations {doc['violations']} != per-backend sum "
            f"{total_violations}")

    for i, failure in enumerate(doc["failures"]):
        where = f"failures[{i}]"
        if not isinstance(failure, dict):
            err(f"{where} is not an object")
            continue
        for field, kind in FAILURE_FIELDS.items():
            if field not in failure:
                err(f"{where} missing field {field!r}")
            elif not isinstance(failure[field], kind):
                err(f"{where}.{field} has wrong type")
        for field in failure:
            if field not in FAILURE_FIELDS:
                err(f"{where} has unknown field {field!r}")
        if errors:
            continue
        if failure["backend"] not in BACKENDS:
            err(f"{where}.backend {failure['backend']!r} not in "
                f"{sorted(BACKENDS)}")
        if failure["n"] < 2:
            err(f"{where}.n = {failure['n']} < 2")
        if failure["messages"] < 0:
            err(f"{where}.messages negative")
        if failure["clause"] not in CLAUSES:
            err(f"{where}.clause {failure['clause']!r} not in "
                f"{sorted(CLAUSES)}")
        if not failure["message"]:
            err(f"{where}.message is empty")
        # A recorded failure must carry a self-contained replayable case.
        case = failure["case"]
        if not case.startswith(CASE_HEADER + "\n"):
            err(f"{where}.case does not start with the {CASE_HEADER!r} "
                f"header line")
        else:
            keys = {line.split("=", 1)[0]
                    for line in case.splitlines()[1:] if "=" in line}
            for required in ("n", "messages", "seed", "schedule", "backend",
                             "mutation"):
                if required not in keys:
                    err(f"{where}.case missing {required!r} line")

    if not errors and len(doc["failures"]) > doc["violations"]:
        err(f"{len(doc['failures'])} recorded failures exceed the "
            f"{doc['violations']} counted violations")
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot parse {sys.argv[1]}: {e}", file=sys.stderr)
        return 1
    errors = check(doc)
    if errors:
        for e in errors:
            print(f"SCHEMA VIOLATION: {e}", file=sys.stderr)
        return 1
    print(f"{sys.argv[1]}: schema OK ({doc['violations']} violation(s) "
          f"across {len(doc['backends'])} backend(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
