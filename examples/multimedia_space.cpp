// Multimedia space (the paper's motivating application, Section 3): each
// participant in a shared conference streams its own sequence of updates
// (audio/slide/annotation events). Replies causally depend on the message
// they answer; unrelated streams stay concurrent and are processed without
// waiting on each other — the "intermediate interpretation" of causality.
//
// This example drives UrcgcProcess directly (no harness) to show the
// low-level API: simulator, network, fault injector, processes, SAP calls
// and delivery indications.
//
// Run: ./build/examples/multimedia_space

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "net/endpoint.hpp"
#include "sim/simulation.hpp"

using namespace urcgc;

namespace {

std::vector<std::uint8_t> text(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string from_payload(const core::AppMessage& msg) {
  return {msg.payload.begin(), msg.payload.end()};
}

}  // namespace

int main() {
  constexpr int kParticipants = 4;
  const char* names[] = {"alice", "bob", "carol", "dave"};

  core::Config config;
  config.n = kParticipants;

  sim::Simulation sim;
  fault::FaultInjector faults(fault::FaultPlan(kParticipants), Rng(5));
  net::Network network(sim, faults, {.min_latency = 5, .max_latency = 9},
                       Rng(6));

  std::vector<std::unique_ptr<net::DatagramEndpoint>> endpoints;
  std::vector<std::unique_ptr<core::UrcgcProcess>> members;
  for (ProcessId p = 0; p < kParticipants; ++p) {
    endpoints.push_back(std::make_unique<net::DatagramEndpoint>(network, p));
    members.push_back(std::make_unique<core::UrcgcProcess>(
        config, p, sim, *endpoints.back(), faults));
  }

  // Each participant logs what it sees, in processing order.
  std::vector<std::vector<std::string>> transcripts(kParticipants);
  for (ProcessId p = 0; p < kParticipants; ++p) {
    members[p]->set_deliver_ind([&, p](const core::AppMessage& msg) {
      transcripts[p].push_back(std::string(names[msg.mid.origin]) + ": " +
                               from_payload(msg));
    });
    members[p]->start();
  }

  auto subrun = [&](int count = 1) {
    sim.run_until(sim.now() + count * sim.clock().ticks_per_subrun());
  };

  // --- The conversation ---------------------------------------------
  // alice starts a topic; bob and carol answer it (explicit causal deps);
  // dave talks about something unrelated, concurrently.
  members[0]->data_rq(text("shall we move the demo to Friday?"));
  members[3]->data_rq(text("uploading slide deck v2"));
  subrun(2);

  // bob replies to alice's question — he declares the dependency by
  // naming the last message of hers he processed.
  members[1]->data_rq(text("Friday works for me"),
                      {members[1]->last_processed_mid_of(0)});
  subrun(2);

  // carol replies to bob's answer (transitively to alice's question).
  members[2]->data_rq(text("then Friday it is"),
                      {members[2]->last_processed_mid_of(1)});
  // dave keeps streaming, still concurrent with the scheduling thread.
  members[3]->data_rq(text("slide 3 has the architecture"));
  subrun(4);

  // --- Show the result ------------------------------------------------
  std::printf("multimedia space with %d participants — transcripts:\n\n",
              kParticipants);
  for (ProcessId p = 0; p < kParticipants; ++p) {
    std::printf("[%s sees]\n", names[p]);
    for (const auto& line : transcripts[p]) {
      std::printf("  %s\n", line.c_str());
    }
    std::printf("\n");
  }

  // Verify the causal guarantees by hand: the question precedes both
  // answers in every transcript, and the answers precede each other in
  // declaration order; dave's stream may interleave anywhere.
  auto position = [](const std::vector<std::string>& t,
                     const std::string& needle) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].find(needle) != std::string::npos) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  bool ok = true;
  for (ProcessId p = 0; p < kParticipants; ++p) {
    const int question = position(transcripts[p], "Friday?");
    const int answer1 = position(transcripts[p], "works for me");
    const int answer2 = position(transcripts[p], "then Friday");
    if (question < 0 || answer1 < 0 || answer2 < 0 ||
        !(question < answer1 && answer1 < answer2)) {
      ok = false;
      std::printf("!! causal thread broken at %s\n", names[p]);
    }
  }
  std::printf("causal thread (question -> answer -> confirmation) intact at"
              " every participant: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
