// Quickstart: a 6-member group exchanging causally related messages over a
// lossy datagram subnet, one member crashing mid-run. Demonstrates the
// public API end to end: ExperimentConfig -> Experiment -> report, plus the
// URCGC guarantees (uniform atomicity + causal ordering) checked over the
// run.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "harness/experiment.hpp"

int main() {
  using namespace urcgc;

  harness::ExperimentConfig config;
  config.protocol.n = 6;
  config.protocol.k_attempts = 3;
  config.workload.load = 0.5;           // each member offers ~1 msg / 2 rounds
  config.workload.total_messages = 120;
  config.workload.cross_dep_prob = 0.4; // messages often depend on others'
  config.faults.omission_prob = 1.0 / 200.0;  // lossy receivers and senders
  config.faults.crashes = {{4, 600}};         // p4 fail-stops at tick 600
  config.seed = 42;

  harness::Experiment experiment(config);
  const harness::ExperimentReport report = experiment.run();

  std::printf("quickstart: URCGC group of %d, %lld messages offered\n",
              config.protocol.n,
              static_cast<long long>(report.submitted));
  std::printf("  finished at        : %.1f rtd (quiescent: %s)\n",
              report.end_rtd, report.quiescent ? "yes" : "no");
  std::printf("  mean e2e delay     : %.2f rtd (p99 %.2f)\n",
              report.delay_rtd.mean, report.delay_rtd.p99);
  std::printf("  processing events  : %llu\n",
              static_cast<unsigned long long>(report.processed_events));
  std::printf("  control messages   : %llu (%llu bytes)\n",
              static_cast<unsigned long long>(report.traffic.control_count()),
              static_cast<unsigned long long>(report.traffic.control_bytes()));
  std::printf("  omissions injected : %llu send / %llu recv\n",
              static_cast<unsigned long long>(
                  report.fault_counters.send_omissions),
              static_cast<unsigned long long>(
                  report.fault_counters.recv_omissions));
  for (const auto& halt : report.halts) {
    std::printf("  halt: p%d (%s) at tick %lld\n", halt.p,
                to_string(halt.reason), static_cast<long long>(halt.at));
  }
  std::printf("  uniform atomicity  : %s\n",
              report.atomicity_ok ? "OK" : "VIOLATED");
  std::printf("  uniform ordering   : %s\n",
              report.ordering_ok ? "OK" : "VIOLATED");
  for (const auto& violation : report.violations) {
    std::printf("  !! %s\n", violation.c_str());
  }
  return report.all_ok() && report.quiescent ? 0 : 1;
}
