// Collaborative editor (cooperative work, paper Section 2): replicas of a
// shared document apply edit operations delivered by the urcgc service.
// Each edit causally depends on the last edit its author had seen of the
// same paragraph; edits to different paragraphs stay concurrent. Because
// every replica processes causally-related edits in the same order, all
// replicas converge — even with a member crashing mid-session and the
// others recovering its missed edits from history.
//
// Run: ./build/examples/collaborative_editor

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "net/endpoint.hpp"
#include "sim/simulation.hpp"

using namespace urcgc;

namespace {

// A paragraph-keyed document; an edit replaces one paragraph's text.
struct Edit {
  int paragraph;
  std::string new_text;
};

std::vector<std::uint8_t> encode_edit(const Edit& edit) {
  std::string s = std::to_string(edit.paragraph) + "|" + edit.new_text;
  return {s.begin(), s.end()};
}

Edit decode_edit(const core::AppMessage& msg) {
  const std::string s(msg.payload.begin(), msg.payload.end());
  const auto bar = s.find('|');
  return Edit{std::stoi(s.substr(0, bar)), s.substr(bar + 1)};
}

class Replica {
 public:
  Replica(core::UrcgcProcess& process, std::string name)
      : process_(process), name_(std::move(name)) {
    process_.set_deliver_ind([this](const core::AppMessage& msg) {
      const Edit edit = decode_edit(msg);
      document_[edit.paragraph] = edit.new_text;
      // Remember the edit that currently defines each paragraph, so the
      // next local edit of that paragraph can declare its causal parent.
      last_edit_of_paragraph_[edit.paragraph] = msg.mid;
      history_.push_back(msg.mid);
    });
  }

  /// Submit an edit; it causally depends on the edit that produced the
  /// version of the paragraph the author is looking at.
  void edit(int paragraph, const std::string& new_text) {
    std::vector<Mid> deps;
    auto it = last_edit_of_paragraph_.find(paragraph);
    if (it != last_edit_of_paragraph_.end()) deps.push_back(it->second);
    process_.data_rq(encode_edit({paragraph, new_text}), std::move(deps));
  }

  [[nodiscard]] std::string render() const {
    std::string out;
    for (const auto& [paragraph, content] : document_) {
      out += "  ¶" + std::to_string(paragraph) + ": " + content + "\n";
    }
    return out;
  }

  [[nodiscard]] const std::map<int, std::string>& document() const {
    return document_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t edits_applied() const { return history_.size(); }

 private:
  core::UrcgcProcess& process_;
  std::string name_;
  std::map<int, std::string> document_;
  std::map<int, Mid> last_edit_of_paragraph_;
  std::vector<Mid> history_;
};

}  // namespace

int main() {
  constexpr int kReplicas = 4;
  const char* names[] = {"w-alpha", "w-beta", "w-gamma", "w-delta"};

  core::Config config;
  config.n = kReplicas;

  // w-delta's workstation dies mid-session; occasional message loss too.
  fault::FaultPlan plan(kReplicas);
  plan.crash(3, 330);
  plan.uniform_omissions(1.0 / 80.0);

  sim::Simulation sim;
  fault::FaultInjector faults(std::move(plan), Rng(45));
  net::Network network(sim, faults, {.min_latency = 5, .max_latency = 9},
                       Rng(46));

  std::vector<std::unique_ptr<net::DatagramEndpoint>> endpoints;
  std::vector<std::unique_ptr<core::UrcgcProcess>> processes;
  std::vector<std::unique_ptr<Replica>> replicas;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    endpoints.push_back(std::make_unique<net::DatagramEndpoint>(network, p));
    processes.push_back(std::make_unique<core::UrcgcProcess>(
        config, p, sim, *endpoints.back(), faults));
    replicas.push_back(std::make_unique<Replica>(*processes.back(),
                                                 names[p]));
    processes.back()->start();
  }

  auto subruns = [&](int count) {
    sim.run_until(sim.now() + count * sim.clock().ticks_per_subrun());
  };

  // --- Editing session -------------------------------------------------
  replicas[0]->edit(1, "URCGC: uniform reliable causal group communication");
  replicas[1]->edit(2, "the algorithm uses a rotating coordinator");
  subruns(3);
  replicas[2]->edit(1, "URCGC guarantees atomicity and causal ordering");
  replicas[3]->edit(3, "history buffers recover omitted messages");
  subruns(3);
  replicas[1]->edit(2, "a subrun spans a request and a decision round");
  replicas[0]->edit(3, "after K silent subruns a member is declared dead");
  subruns(12);  // let the crash be absorbed and recovery settle

  // --- Convergence check ------------------------------------------------
  std::printf("collaborative editor, %d replicas (w-delta crashes at tick"
              " 330, lossy LAN)\n\n", kReplicas);
  for (ProcessId p = 0; p < kReplicas; ++p) {
    std::printf("[%s]%s\n%s", replicas[p]->name().c_str(),
                processes[p]->halted() ? " (crashed)" : "",
                replicas[p]->render().c_str());
    std::printf("\n");
  }

  bool converged = true;
  const auto& reference = replicas[0]->document();
  for (ProcessId p = 1; p < kReplicas; ++p) {
    if (processes[p]->halted()) continue;
    if (replicas[p]->document() != reference) {
      converged = false;
      std::printf("!! %s diverged from %s\n", replicas[p]->name().c_str(),
                  replicas[0]->name().c_str());
    }
  }
  std::printf("all surviving replicas converged: %s\n",
              converged ? "YES" : "NO");
  return converged ? 0 : 1;
}
