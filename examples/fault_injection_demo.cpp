// Fault-injection observability demo: runs a group under aggressive
// general-omission faults and prints the protocol's internal events as
// they happen — decisions, crash declarations, history recovery, suicide,
// cleaning — through the Observer interface. Useful both as an API tour
// and as a narrated trace of Section 4's failure machinery.
//
// Run: ./build/examples/fault_injection_demo

#include <cstdio>
#include <memory>
#include <vector>

#include "core/process.hpp"
#include "net/endpoint.hpp"
#include "sim/simulation.hpp"

using namespace urcgc;

namespace {

class Narrator : public core::Observer {
 public:
  explicit Narrator(const sim::RoundClock& clock) : clock_(clock) {}

  void on_decision_made(ProcessId coordinator, const core::Decision& d,
                        Tick at) override {
    if (d.alive_count() != last_alive_ || d.full_group != last_full_) {
      std::printf("%6.1f rtd  p%d decides: %d alive%s\n", clock_.to_rtd(at),
                  coordinator, d.alive_count(),
                  d.full_group ? ", stability point published" : "");
      last_alive_ = d.alive_count();
      last_full_ = d.full_group;
    }
  }

  void on_recovery_attempt(ProcessId p, ProcessId target, ProcessId origin,
                           Tick at) override {
    ++recoveries_;
    if (recoveries_ <= 8) {  // don't flood the narration
      std::printf("%6.1f rtd  p%d asks p%d for missed messages of p%d\n",
                  clock_.to_rtd(at), p, target, origin);
    }
  }

  void on_history_cleaned(ProcessId p, std::size_t purged,
                          Tick at) override {
    cleaned_ += purged;
    if (p == 0) {
      std::printf("%6.1f rtd  p0 purges %zu stable messages from history\n",
                  clock_.to_rtd(at), purged);
    }
  }

  void on_halt(ProcessId p, core::HaltReason reason, Tick at) override {
    std::printf("%6.1f rtd  p%d halts (%s)\n", clock_.to_rtd(at), p,
                to_string(reason));
  }

  void on_discarded(ProcessId p, const Mid& mid, Tick at) override {
    std::printf("%6.1f rtd  p%d destroys orphaned %s\n", clock_.to_rtd(at),
                p, to_string(mid).c_str());
  }

  void on_flow_blocked(ProcessId p, Tick at) override {
    if (++flow_blocks_ == 1) {
      std::printf("%6.1f rtd  p%d paused by flow control (history full)\n",
                  clock_.to_rtd(at), p);
    }
  }

  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] std::uint64_t cleaned() const { return cleaned_; }

 private:
  const sim::RoundClock& clock_;
  int last_alive_ = -1;
  bool last_full_ = false;
  std::uint64_t recoveries_ = 0;
  std::uint64_t cleaned_ = 0;
  std::uint64_t flow_blocks_ = 0;
};

}  // namespace

int main() {
  constexpr int kN = 6;
  core::Config config;
  config.n = kN;
  config.k_attempts = 3;

  // Aggressive fault mix: p5 crashes early; p4 goes send-dead (it will be
  // declared crashed and commit suicide when it learns); everyone suffers
  // 1-in-60 omissions.
  fault::FaultPlan plan(kN);
  plan.crash(5, 140);
  plan.send_omissions(4, 1.0);
  plan.uniform_omissions(1.0 / 60.0);
  plan.per_process[4].send_omission_prob = 1.0;  // keep p4 fully send-dead

  sim::Simulation sim;
  fault::FaultInjector faults(std::move(plan), Rng(99));
  net::Network network(sim, faults, {.min_latency = 5, .max_latency = 9},
                       Rng(98));
  Narrator narrator(sim.clock());

  std::vector<std::unique_ptr<net::DatagramEndpoint>> endpoints;
  std::vector<std::unique_ptr<core::UrcgcProcess>> members;
  for (ProcessId p = 0; p < kN; ++p) {
    endpoints.push_back(std::make_unique<net::DatagramEndpoint>(network, p));
    members.push_back(std::make_unique<core::UrcgcProcess>(
        config, p, sim, *endpoints.back(), faults, &narrator));
    members.back()->start();
  }

  std::printf("fault-injection demo: n=%d, K=%d; p5 crashes, p4 is"
              " send-dead, 1/60 omissions everywhere\n\n", kN);

  // Offer steady traffic from the healthy members for 30 subruns.
  for (int s = 0; s < 30; ++s) {
    for (ProcessId p = 0; p < 4; ++p) {
      members[p]->data_rq({static_cast<std::uint8_t>(s)});
    }
    sim.run_until(sim.now() + sim.clock().ticks_per_subrun());
  }
  // Drain.
  sim.run_until(sim.now() + 10 * sim.clock().ticks_per_subrun());

  std::printf("\nfinal state:\n");
  for (ProcessId p = 0; p < kN; ++p) {
    std::printf("  p%d: %s, processed %zu messages, history %zu, waiting"
                " %zu\n",
                p,
                members[p]->halted() ? to_string(members[p]->halt_reason())
                                     : "active",
                members[p]->mt().processing_log().size(),
                members[p]->mt().history_size(),
                members[p]->mt().waiting_size());
  }
  std::printf("  history recoveries issued: %llu, stable messages purged:"
              " %llu\n",
              static_cast<unsigned long long>(narrator.recoveries()),
              static_cast<unsigned long long>(narrator.cleaned()));

  // The demo succeeds if the survivors agree on what they processed.
  const auto& reference = members[0]->mt().processing_log();
  std::size_t reference_count = reference.size();
  bool agree = true;
  for (ProcessId p = 1; p < 4; ++p) {
    if (members[p]->halted()) continue;
    if (members[p]->mt().processing_log().size() != reference_count) {
      agree = false;
    }
  }
  std::printf("survivors agree on processed set size: %s\n",
              agree ? "YES" : "NO");
  return agree ? 0 : 1;
}
