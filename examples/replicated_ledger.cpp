// Replicated ledger: the total-order use case of the paper's Section 2
// ("applications operating on replicated data objects need a multicast
// service that ensures a total ordering"). Account operations are NOT
// commutative — credit then a capped withdrawal gives a different balance
// than the reverse — so causal order alone is not enough when tellers act
// concurrently. The TotalOrderAdapter (urgc-companion layer) sequences
// every replica identically, so all balances agree.
//
// Run: ./build/examples/replicated_ledger

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/total_order.hpp"
#include "net/endpoint.hpp"
#include "sim/simulation.hpp"

using namespace urcgc;

namespace {

// Operation encoding: "account|op|amount", op in {credit, withdraw}.
std::vector<std::uint8_t> op(const std::string& account, const char* kind,
                             long amount) {
  const std::string s =
      account + "|" + kind + "|" + std::to_string(amount);
  return {s.begin(), s.end()};
}

class Ledger {
 public:
  void apply(const core::AppMessage& msg) {
    const std::string s(msg.payload.begin(), msg.payload.end());
    const auto bar1 = s.find('|');
    const auto bar2 = s.find('|', bar1 + 1);
    const std::string account = s.substr(0, bar1);
    const std::string kind = s.substr(bar1 + 1, bar2 - bar1 - 1);
    const long amount = std::stol(s.substr(bar2 + 1));
    long& balance = balances_[account];
    if (kind == "credit") {
      balance += amount;
    } else {
      // Capped withdrawal: take what's there, never go negative. This is
      // the non-commutative operation that needs total order.
      balance -= std::min(balance, amount);
    }
  }

  [[nodiscard]] const std::map<std::string, long>& balances() const {
    return balances_;
  }

 private:
  std::map<std::string, long> balances_;
};

}  // namespace

int main() {
  constexpr int kReplicas = 4;

  core::Config config;
  config.n = kReplicas;
  config.track_stability_boundaries = true;  // enables the total order

  fault::FaultPlan plan(kReplicas);
  plan.uniform_omissions(1.0 / 120.0);  // a lossy LAN, for good measure

  sim::Simulation sim;
  fault::FaultInjector faults(std::move(plan), Rng(77));
  net::Network network(sim, faults, {.min_latency = 5, .max_latency = 9},
                       Rng(78));

  std::vector<std::unique_ptr<net::DatagramEndpoint>> endpoints;
  std::vector<std::unique_ptr<core::UrcgcProcess>> processes;
  std::vector<std::unique_ptr<core::TotalOrderAdapter>> adapters;
  std::vector<Ledger> ledgers(kReplicas);
  for (ProcessId p = 0; p < kReplicas; ++p) {
    endpoints.push_back(std::make_unique<net::DatagramEndpoint>(network, p));
    processes.push_back(std::make_unique<core::UrcgcProcess>(
        config, p, sim, *endpoints.back(), faults));
    adapters.push_back(
        std::make_unique<core::TotalOrderAdapter>(*processes.back()));
    adapters.back()->set_total_ind(
        [&ledgers, p](const core::AppMessage& msg) {
          ledgers[p].apply(msg);
        });
    processes.back()->start();
  }

  auto subruns = [&](int count) {
    sim.run_until(sim.now() + count * sim.clock().ticks_per_subrun());
  };

  // Concurrent tellers: replica 0 credits while replicas 1 and 2 withdraw
  // from the same accounts in the same rounds — any interleaving is
  // causally legal; only total order makes the replicas agree.
  processes[0]->data_rq(op("alice", "credit", 100));
  processes[1]->data_rq(op("alice", "withdraw", 80));
  processes[2]->data_rq(op("bob", "credit", 50));
  subruns(1);
  processes[3]->data_rq(op("bob", "withdraw", 70));
  processes[0]->data_rq(op("alice", "credit", 30));
  subruns(1);
  processes[1]->data_rq(op("alice", "withdraw", 40));
  processes[2]->data_rq(op("bob", "credit", 25));
  subruns(12);  // drain + stability

  std::printf("replicated ledger over urcgc + total-order layer (%d"
              " replicas, lossy LAN)\n\n", kReplicas);
  for (ProcessId p = 0; p < kReplicas; ++p) {
    std::printf("[replica %d] delivered %zu ops in total order:", p,
                adapters[p]->total_log().size());
    for (const auto& [account, balance] : ledgers[p].balances()) {
      std::printf("  %s=%ld", account.c_str(), balance);
    }
    std::printf("%s\n", adapters[p]->broken() ? "  (BROKEN)" : "");
  }

  bool agree = true;
  for (ProcessId p = 1; p < kReplicas; ++p) {
    if (ledgers[p].balances() != ledgers[0].balances()) agree = false;
  }
  std::printf("\nall replicas agree on every balance: %s\n",
              agree ? "YES" : "NO");
  return agree ? 0 : 1;
}
